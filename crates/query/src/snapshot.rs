//! Zero-deserialization snapshot persistence for [`ComponentIndex`].
//!
//! A snapshot is the finished product of a pipeline run — the four index
//! arrays plus the labeling — written to disk in exactly the fixed-width
//! layout the in-memory index uses, so a replica boot is one bulk read
//! into an alignment-guaranteed buffer followed by header validation and
//! in-place reinterpretation. No per-element decode, no allocation per
//! section, no hashing: the same flat-array discipline that makes the
//! dense DHT fast makes the boot path O(validate) instead of O(pipeline).
//!
//! # On-disk format (version 1, little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"AMPCSNAP"
//!      8     4  format version (u32, = 1)
//!     12     4  endianness tag (u32, = 0x0DD0_EC0D stored little-endian)
//!     16     8  graph_n (u64)
//!     24     8  graph_m (u64)
//!     32     1  algorithm (u8: 1 = forest, 2 = general)
//!     33     7  zero padding
//!     40   160  section table: 5 × { kind u64, byte_off u64,
//!                                    byte_len u64, checksum u64 }
//!    200     8  header checksum (fold hash of bytes [0, 200))
//!    208   ...  sections, each 8-byte aligned, zero-padded between
//! ```
//!
//! Sections appear in fixed order with fixed kinds:
//!
//! | kind | section    | element | count |
//! |------|-----------|---------|-------|
//! | 1    | `comp_of`  | u32     | n     |
//! | 2    | `offsets`  | u64     | c + 1 |
//! | 3    | `members`  | u32     | n     |
//! | 4    | `by_size`  | u32     | c     |
//! | 5    | `labeling` | u64     | n     |
//!
//! The endianness tag is compared with a **native** 4-byte read: a
//! big-endian host sees the byte-swapped value and gets
//! [`SnapshotError::EndiannessMismatch`] instead of silently misreading
//! little-endian sections it would otherwise reinterpret in place. All
//! checksums are the hand-rolled [`checksum`] fold hash (multiply-xorshift
//! over 8-byte words, length folded into the seed) — no external crates.
//!
//! # Trust model
//!
//! The loader never trusts the file. Validation runs outside-in — size,
//! magic, endianness, version, header checksum, section-table sanity
//! (kinds, order, alignment, bounds, length consistency), per-section
//! checksums, then semantic invariants (monotone offsets, in-range
//! component ids, `by_size` a permutation, `comp_of` in first-appearance
//! canonical form consistent with the labeling) — and every rejection is a
//! typed [`SnapshotError`], never a panic and never undefined behaviour.

use std::fmt;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ampc_graph::Labeling;

use crate::index::{ComponentId, ComponentIndex};

/// Fault-injection hook for the persist/boot seams.
///
/// This crate sits below the serving layer that owns the failpoint
/// registry (`ampc_serve::fault`), so the crash-injection sites here are
/// reached through one installable function pointer instead of a
/// dependency cycle. When no hook is installed — every production
/// deployment — a traversal is a single `Relaxed` atomic load of a null
/// pointer; both seams (persist, boot) are cold paths anyway.
///
/// Site names are part of the public failpoint catalog (see
/// `ampc_serve::fault` and DESIGN.md "Fault model"):
/// `persist.pre-tmp`, `persist.pre-rename`, `persist.pre-dirsync`,
/// `snapshot.load`.
pub mod fail {
    use std::sync::atomic::{AtomicPtr, Ordering};

    /// The hook signature: given a site name, return `Ok(())` to pass or
    /// an error to inject a detected failure (the hook may also panic to
    /// simulate a crash).
    pub type Hook = fn(&'static str) -> std::io::Result<()>;

    static HOOK: AtomicPtr<()> = AtomicPtr::new(std::ptr::null_mut());

    /// Snapshot write, before the temp file is created.
    pub const PERSIST_PRE_TMP: &str = "persist.pre-tmp";
    /// Snapshot write, after the temp file is written and fsynced,
    /// before the rename.
    pub const PERSIST_PRE_RENAME: &str = "persist.pre-rename";
    /// Snapshot write, after the rename, before the parent-dir fsync.
    pub const PERSIST_PRE_DIRSYNC: &str = "persist.pre-dirsync";
    /// Snapshot boot, before the file is opened.
    pub const SNAPSHOT_LOAD: &str = "snapshot.load";

    /// Installs (or, with `None`, removes) the process-wide hook.
    pub fn set_hook(hook: Option<Hook>) {
        let ptr = match hook {
            Some(f) => f as *mut (),
            None => std::ptr::null_mut(),
        };
        HOOK.store(ptr, Ordering::Release);
    }

    #[inline]
    pub(super) fn check(site: &'static str) -> std::io::Result<()> {
        let ptr = HOOK.load(Ordering::Relaxed);
        if ptr.is_null() {
            return Ok(());
        }
        // SAFETY: the only non-null value ever stored is a `Hook` fn
        // pointer (set_hook); fn pointers round-trip through `*mut ()`.
        let hook: Hook = unsafe { std::mem::transmute::<*mut (), Hook>(ptr) };
        hook(site)
    }
}

/// Leading magic bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"AMPCSNAP";
/// Current format version; bump on any layout change (see DESIGN.md for
/// the version-bump policy).
pub const FORMAT_VERSION: u32 = 1;
/// Asymmetric endianness probe constant (no byte appears twice, and the
/// byte-swapped value differs from the value itself).
const ENDIAN_TAG: u32 = 0x0DD0_EC0D;
/// Size of the fixed header, including the trailing header checksum.
pub const HEADER_LEN: usize = 208;
/// Byte offset of the header checksum inside the file (tests re-sign
/// crafted headers through this).
pub const HEADER_CHECKSUM_OFFSET: usize = 200;
/// Number of sections in a version-1 snapshot.
pub const NUM_SECTIONS: usize = 5;

const TABLE_OFFSET: usize = 40;
const SECTION_NAMES: [&str; NUM_SECTIONS] =
    ["comp_of", "offsets", "members", "by_size", "labeling"];

/// Why a snapshot could not be written or loaded.
///
/// Every load-path failure is one of these — a corrupt or hostile file can
/// never panic the replica or reinterpret out-of-bounds memory.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The file was written on a host with different endianness than the
    /// reader; its sections cannot be reinterpreted in place.
    EndiannessMismatch,
    /// The file's format version is not one this build understands.
    UnsupportedVersion {
        /// Version number found in the header.
        found: u32,
    },
    /// The file ends before the advertised data does.
    Truncated {
        /// Bytes the header (or header parsing) requires.
        need: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The fixed header is self-inconsistent (bad section table, bad
    /// algorithm tag, failed header checksum, trailing bytes, ...).
    HeaderCorrupt {
        /// Human-readable diagnosis.
        detail: String,
    },
    /// A section's payload does not match its recorded checksum.
    ChecksumMismatch {
        /// Name of the failing section.
        section: &'static str,
    },
    /// A section passed its checksum but violates a semantic invariant —
    /// the file was signed by a buggy or hostile writer.
    Malformed {
        /// Name of the offending section.
        section: &'static str,
        /// Human-readable diagnosis.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::EndiannessMismatch => {
                write!(f, "snapshot endianness does not match this host")
            }
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot format version {found} (expected {FORMAT_VERSION})")
            }
            SnapshotError::Truncated { need, have } => {
                write!(f, "snapshot truncated: need {need} bytes, have {have}")
            }
            SnapshotError::HeaderCorrupt { detail } => {
                write!(f, "snapshot header corrupt: {detail}")
            }
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "snapshot section `{section}` failed its checksum")
            }
            SnapshotError::Malformed { section, detail } => {
                write!(f, "snapshot section `{section}` malformed: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Fold-hash checksum: four independent multiply-fold lanes over 8-byte
/// little-endian words (one 32-byte stride per iteration), length folded
/// into every lane's seed, trailing partial stride zero-extended, lanes
/// combined through the SplitMix64 finalizer. The lanes exist for
/// instruction-level parallelism: a single multiply-fold chain is latency
/// bound near 1 GB/s, which would dominate the zero-deserialization boot;
/// four interleaved chains run at memory speed, so checksumming every
/// section at load costs well under a millisecond per 16 MB. Each lane
/// step `l = (l ^ w) * M` (odd `M`) is injective in `w`, so any
/// single-bit flip — including in the zero-extended tail — reaches the
/// avalanching final combine.
pub fn checksum(bytes: &[u8]) -> u64 {
    #[inline]
    fn mix64(mut x: u64) -> u64 {
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
    const M: u64 = 0x2545_F491_4F6C_DD1D;
    let seed = 0x9E37_79B9_7F4A_7C15u64 ^ (bytes.len() as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    let (mut l0, mut l1) = (mix64(seed ^ 1), mix64(seed ^ 2));
    let (mut l2, mut l3) = (mix64(seed ^ 3), mix64(seed ^ 4));
    let word = |c: &[u8], o: usize| u64::from_le_bytes(c[o..o + 8].try_into().unwrap());
    let mut chunks = bytes.chunks_exact(32);
    for c in &mut chunks {
        l0 = (l0 ^ word(c, 0)).wrapping_mul(M);
        l1 = (l1 ^ word(c, 8)).wrapping_mul(M);
        l2 = (l2 ^ word(c, 16)).wrapping_mul(M);
        l3 = (l3 ^ word(c, 24)).wrapping_mul(M);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut pad = [0u8; 32];
        pad[..rest.len()].copy_from_slice(rest);
        l0 = (l0 ^ word(&pad, 0)).wrapping_mul(M);
        l1 = (l1 ^ word(&pad, 8)).wrapping_mul(M);
        l2 = (l2 ^ word(&pad, 16)).wrapping_mul(M);
        l3 = (l3 ^ word(&pad, 24)).wrapping_mul(M);
    }
    let mut h = seed;
    h = mix64(h ^ l0).wrapping_mul(M);
    h = mix64(h ^ l1).wrapping_mul(M);
    h = mix64(h ^ l2).wrapping_mul(M);
    h = mix64(h ^ l3).wrapping_mul(M);
    mix64(h)
}

/// An 8-byte-aligned byte buffer holding one whole snapshot file.
///
/// Backing storage is a `Vec<u64>`, so the base address is always aligned
/// for every section element type (`u32`/`u64`) and in-place
/// reinterpretation of 8-byte-aligned section offsets is sound.
pub struct SnapshotBuf {
    words: Vec<u64>,
    len: usize,
}

impl SnapshotBuf {
    /// An all-zero buffer of `len` bytes.
    pub fn with_len(len: usize) -> Self {
        SnapshotBuf { words: vec![0u64; len.div_ceil(8)], len }
    }

    /// A buffer holding a copy of `bytes` (for decoding in-memory images).
    pub fn copy_of(bytes: &[u8]) -> Self {
        let mut buf = Self::with_len(bytes.len());
        buf.as_bytes_mut().copy_from_slice(bytes);
        buf
    }

    /// The buffer contents.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: `words` owns ≥ `len` initialized bytes at an 8-aligned
        // base; u64 → u8 reinterpretation is always valid.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }

    fn as_bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: as `as_bytes`, and `&mut self` gives unique access.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr() as *mut u8, self.len) }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One row of a parsed section table (a test hook: the corruption-matrix
/// tests use it to aim bit-flips and re-sign crafted files).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section name (`comp_of`, `offsets`, `members`, `by_size`,
    /// `labeling`).
    pub name: &'static str,
    /// Byte offset of the section payload in the file.
    pub byte_off: usize,
    /// Exact payload length in bytes (padding excluded).
    pub byte_len: usize,
    /// Recorded payload checksum.
    pub checksum: u64,
    /// Byte offset *of the checksum field itself* inside the header.
    pub checksum_slot: usize,
}

/// A loaded snapshot: the zero-copy index plus the owned labeling and the
/// run metadata the header carries.
pub struct Snapshot {
    /// The component index, borrowing its sections from the snapshot
    /// buffer ([`ComponentIndex::is_snapshot_backed`] is true).
    pub index: ComponentIndex,
    /// The run's labeling (copied out: `Labeling` owns a `Vec<u64>`).
    pub labeling: Labeling,
    /// Vertex count of the graph the run was over.
    pub graph_n: u64,
    /// Edge count of the graph the run was over.
    pub graph_m: u64,
    /// Pipeline algorithm tag (1 = forest, 2 = general).
    pub algorithm: u8,
    /// Total snapshot size in bytes.
    pub file_bytes: usize,
}

fn u32_at(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().unwrap())
}

fn u64_at(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().unwrap())
}

fn align8(x: usize) -> usize {
    x.div_ceil(8) * 8
}

fn push_u32s(out: &mut Vec<u8>, words: &[u32]) {
    out.reserve(words.len() * 4);
    for &w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

fn push_u64s(out: &mut Vec<u8>, words: &[u64]) {
    out.reserve(words.len() * 8);
    for &w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Encodes an index + labeling into a complete snapshot image.
///
/// `graph_n`/`graph_m` describe the graph the labeling was computed over
/// (`graph_n` must equal the number of indexed vertices); `algorithm` is
/// the pipeline tag (1 = forest, 2 = general).
///
/// # Panics
/// Panics if `labeling.len() != index.num_vertices()` or `graph_n`
/// disagrees with it — the writer refuses to sign an inconsistent image.
pub fn encode(
    index: &ComponentIndex,
    labeling: &Labeling,
    graph_n: u64,
    graph_m: u64,
    algorithm: u8,
) -> Vec<u8> {
    let n = index.num_vertices();
    assert_eq!(labeling.len(), n, "labeling and index cover different vertex counts");
    assert_eq!(graph_n, n as u64, "graph_n disagrees with the index");
    assert!(algorithm == 1 || algorithm == 2, "algorithm tag must be 1 (forest) or 2 (general)");

    let comp_of = index.comp_of_slice();
    let offsets = index.offsets_slice();
    let members = index.members_slice();
    let by_size = index.by_size_slice();

    let lens = [
        comp_of.len() * 4,
        offsets.len() * 8,
        members.len() * 4,
        by_size.len() * 4,
        labeling.len() * 8,
    ];
    let mut offs = [0usize; NUM_SECTIONS];
    let mut cursor = HEADER_LEN;
    for (slot, len) in offs.iter_mut().zip(lens) {
        *slot = cursor;
        cursor = align8(cursor + len);
    }
    let total = cursor;

    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&ENDIAN_TAG.to_le_bytes());
    out.extend_from_slice(&graph_n.to_le_bytes());
    out.extend_from_slice(&graph_m.to_le_bytes());
    out.push(algorithm);
    out.extend_from_slice(&[0u8; 7]);
    // Section table — checksums patched in after the payloads are laid
    // down (they are computed over the exact payload bytes).
    for (i, (&off, &len)) in offs.iter().zip(&lens).enumerate() {
        out.extend_from_slice(&(i as u64 + 1).to_le_bytes());
        out.extend_from_slice(&(off as u64).to_le_bytes());
        out.extend_from_slice(&(len as u64).to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes());
    }
    out.extend_from_slice(&[0u8; 8]); // header checksum placeholder
    debug_assert_eq!(out.len(), HEADER_LEN);

    push_u32s(&mut out, comp_of);
    out.resize(offs[1], 0);
    push_u64s(&mut out, offsets);
    out.resize(offs[2], 0);
    push_u32s(&mut out, members);
    out.resize(offs[3], 0);
    push_u32s(&mut out, by_size);
    out.resize(offs[4], 0);
    labeling.write_le(&mut out);
    out.resize(total, 0);

    for (i, (&off, &len)) in offs.iter().zip(&lens).enumerate() {
        let digest = checksum(&out[off..off + len]);
        let slot = TABLE_OFFSET + i * 32 + 24;
        out[slot..slot + 8].copy_from_slice(&digest.to_le_bytes());
    }
    let header_digest = checksum(&out[..HEADER_CHECKSUM_OFFSET]);
    out[HEADER_CHECKSUM_OFFSET..HEADER_LEN].copy_from_slice(&header_digest.to_le_bytes());
    out
}

/// Writes `bytes` to `path` atomically and durably: write + fsync a
/// sibling temp file, rename over the destination, then fsync the parent
/// directory. Readers either see the old file or the complete new one,
/// never a torn write — and once the call returns, a crash cannot un-do
/// the rename (the directory entry itself is on disk).
///
/// Temp names are unique per call (`<stem>.tmp.<pid>.<counter>`), so two
/// handles persisting the same path concurrently — even from one process —
/// never clobber each other's temp file mid-write; the loser of the rename
/// race simply publishes second. A temp file stranded by a crash is inert:
/// nothing ever opens `*.tmp.*` again, and later persists pick fresh
/// names.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    fail::check(fail::PERSIST_PRE_TMP)?;
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| -> std::io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fail::check(fail::PERSIST_PRE_RENAME)?;
        std::fs::rename(&tmp, path)?;
        fail::check(fail::PERSIST_PRE_DIRSYNC)?;
        // A rename is durable only once the *directory entry* is synced:
        // without this, a crash after the rename can lose the new file
        // entirely (the data blocks were synced, the name was not).
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            File::open(parent)?.sync_all()?;
        }
        Ok(())
    })();
    if result.is_err() {
        // Best-effort cleanup of a *detected* failure; after the rename
        // this is a no-op (the temp name no longer exists). A crash-style
        // failure (panic/kill) skips this, stranding the temp file — which
        // the unique naming makes harmless.
        let _ = std::fs::remove_file(&tmp);
    }
    result.map_err(SnapshotError::Io)
}

/// Encodes and atomically persists a snapshot; returns the bytes written.
pub fn persist(
    path: &Path,
    index: &ComponentIndex,
    labeling: &Labeling,
    graph_n: u64,
    graph_m: u64,
    algorithm: u8,
) -> Result<u64, SnapshotError> {
    let timer = ampc_obs::Timer::start(ampc_obs::hist(ampc_obs::HistId::SnapshotPersistNs));
    let bytes = encode(index, labeling, graph_n, graph_m, algorithm);
    write_atomic(path, &bytes)?;
    let written = bytes.len() as u64;
    let elapsed = timer.stop();
    ampc_obs::counter(ampc_obs::CounterId::SnapshotPersists).inc();
    ampc_obs::counter(ampc_obs::CounterId::SnapshotPersistBytes).add(written);
    ampc_obs::trace(ampc_obs::TraceKind::SnapshotPersisted, written, elapsed);
    Ok(written)
}

/// Validates the fixed header and returns the parsed section table.
///
/// Public as a test hook: the corruption-matrix tests parse a good file's
/// table to aim precise bit-flips and truncations.
pub fn section_table(bytes: &[u8]) -> Result<[SectionInfo; NUM_SECTIONS], SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated { need: HEADER_LEN, have: bytes.len() });
    }
    if bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    // Native read on purpose: a byte-swapped tag means the file's sections
    // cannot be reinterpreted on this host. Checked before the version so
    // the version field itself is read with known byte order.
    let tag = u32::from_ne_bytes(bytes[12..16].try_into().unwrap());
    if tag != ENDIAN_TAG {
        return Err(SnapshotError::EndiannessMismatch);
    }
    let version = u32_at(bytes, 8);
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let recorded = u64_at(bytes, HEADER_CHECKSUM_OFFSET);
    if checksum(&bytes[..HEADER_CHECKSUM_OFFSET]) != recorded {
        return Err(SnapshotError::HeaderCorrupt { detail: "header checksum mismatch".into() });
    }

    let mut table =
        [SectionInfo { name: "", byte_off: 0, byte_len: 0, checksum: 0, checksum_slot: 0 };
            NUM_SECTIONS];
    let mut expected_off = HEADER_LEN;
    for (i, slot) in table.iter_mut().enumerate() {
        let row = TABLE_OFFSET + i * 32;
        let kind = u64_at(bytes, row);
        if kind != i as u64 + 1 {
            return Err(SnapshotError::HeaderCorrupt {
                detail: format!("section {i} has kind {kind}, expected {}", i + 1),
            });
        }
        let byte_off = u64_at(bytes, row + 8);
        let byte_len = u64_at(bytes, row + 16);
        // Bounds before narrowing: a hostile 2^63 offset must not wrap.
        if byte_off > usize::MAX as u64
            || byte_len > usize::MAX as u64
            || byte_off.checked_add(byte_len).is_none()
        {
            return Err(SnapshotError::HeaderCorrupt {
                detail: format!("section `{}` extent overflows", SECTION_NAMES[i]),
            });
        }
        let (byte_off, byte_len) = (byte_off as usize, byte_len as usize);
        if byte_off % 8 != 0 {
            return Err(SnapshotError::HeaderCorrupt {
                detail: format!(
                    "section `{}` offset {byte_off} not 8-byte aligned",
                    SECTION_NAMES[i]
                ),
            });
        }
        if byte_off != expected_off {
            return Err(SnapshotError::HeaderCorrupt {
                detail: format!(
                    "section `{}` at offset {byte_off}, expected {expected_off}",
                    SECTION_NAMES[i]
                ),
            });
        }
        expected_off = align8(byte_off + byte_len);
        *slot = SectionInfo {
            name: SECTION_NAMES[i],
            byte_off,
            byte_len,
            checksum: u64_at(bytes, row + 24),
            checksum_slot: row + 24,
        };
    }
    match bytes.len().cmp(&expected_off) {
        std::cmp::Ordering::Less => {
            return Err(SnapshotError::Truncated { need: expected_off, have: bytes.len() })
        }
        std::cmp::Ordering::Greater => {
            return Err(SnapshotError::HeaderCorrupt {
                detail: format!("{} trailing bytes after last section", bytes.len() - expected_off),
            })
        }
        std::cmp::Ordering::Equal => {}
    }
    Ok(table)
}

/// Reinterprets `count` elements of `T` at `off` — bounds and alignment
/// must already be validated.
///
/// # Safety
/// `off` must be aligned for `T` and `off + count * size_of::<T>()` must
/// be within `bytes`.
unsafe fn view<T>(bytes: &[u8], off: usize, count: usize) -> &[T] {
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().add(off) as *const T, count) }
}

fn decode_buf(buf: Arc<SnapshotBuf>) -> Result<Snapshot, SnapshotError> {
    let bytes = buf.as_bytes();
    let table = section_table(bytes)?;

    // Length consistency: section byte lengths must agree with each other
    // and with the header's graph_n before any element is interpreted.
    let [comp_of_s, offsets_s, members_s, by_size_s, labeling_s] = table;
    if comp_of_s.byte_len % 4 != 0 {
        return Err(SnapshotError::HeaderCorrupt {
            detail: format!("comp_of byte length {} not a multiple of 4", comp_of_s.byte_len),
        });
    }
    let n = comp_of_s.byte_len / 4;
    let graph_n = u64_at(bytes, 16);
    let graph_m = u64_at(bytes, 24);
    if graph_n != n as u64 {
        return Err(SnapshotError::HeaderCorrupt {
            detail: format!("header graph_n {graph_n} disagrees with comp_of length {n}"),
        });
    }
    if n as u64 > u32::MAX as u64 {
        return Err(SnapshotError::HeaderCorrupt {
            detail: format!("vertex count {n} exceeds u32 id space"),
        });
    }
    if offsets_s.byte_len % 8 != 0 || offsets_s.byte_len == 0 {
        return Err(SnapshotError::HeaderCorrupt {
            detail: format!("offsets byte length {} invalid", offsets_s.byte_len),
        });
    }
    let c = offsets_s.byte_len / 8 - 1;
    if c > n {
        return Err(SnapshotError::HeaderCorrupt {
            detail: format!("{c} components over {n} vertices"),
        });
    }
    if members_s.byte_len != n * 4 {
        return Err(SnapshotError::HeaderCorrupt {
            detail: format!("members byte length {} != 4·n = {}", members_s.byte_len, n * 4),
        });
    }
    if by_size_s.byte_len != c * 4 {
        return Err(SnapshotError::HeaderCorrupt {
            detail: format!("by_size byte length {} != 4·c = {}", by_size_s.byte_len, c * 4),
        });
    }
    if labeling_s.byte_len != n * 8 {
        return Err(SnapshotError::HeaderCorrupt {
            detail: format!("labeling byte length {} != 8·n = {}", labeling_s.byte_len, n * 8),
        });
    }
    let algorithm = bytes[32];
    if algorithm != 1 && algorithm != 2 {
        return Err(SnapshotError::HeaderCorrupt {
            detail: format!("unknown algorithm tag {algorithm}"),
        });
    }

    for s in &table {
        if checksum(&bytes[s.byte_off..s.byte_off + s.byte_len]) != s.checksum {
            return Err(SnapshotError::ChecksumMismatch { section: s.name });
        }
    }

    // SAFETY: every section's bounds and 8-byte alignment were validated
    // by `section_table`, and the buffer base is 8-byte aligned.
    let comp_of: &[u32] = unsafe { view(bytes, comp_of_s.byte_off, n) };
    let offsets: &[u64] = unsafe { view(bytes, offsets_s.byte_off, c + 1) };
    let members: &[u32] = unsafe { view(bytes, members_s.byte_off, n) };
    let by_size: &[u32] = unsafe { view(bytes, by_size_s.byte_off, c) };
    let labels: &[u64] = unsafe { view(bytes, labeling_s.byte_off, n) };

    // Semantic invariants — checksummed garbage from a buggy or hostile
    // writer still must not poison the replica.
    if offsets[0] != 0 {
        return Err(SnapshotError::Malformed {
            section: "offsets",
            detail: format!("offsets[0] = {}, expected 0", offsets[0]),
        });
    }
    if let Some(w) = offsets.windows(2).position(|w| w[0] > w[1]) {
        return Err(SnapshotError::Malformed {
            section: "offsets",
            detail: format!("non-monotone at index {w}: {} > {}", offsets[w], offsets[w + 1]),
        });
    }
    if offsets[c] != n as u64 {
        return Err(SnapshotError::Malformed {
            section: "offsets",
            detail: format!("offsets[{c}] = {}, expected n = {n}", offsets[c]),
        });
    }
    if let Some(i) = members.iter().position(|&m| m as usize >= n) {
        return Err(SnapshotError::Malformed {
            section: "members",
            detail: format!("member slot {i} names vertex {} of {n}", members[i]),
        });
    }
    let mut seen = vec![false; c];
    for (rank, &d) in by_size.iter().enumerate() {
        if d as usize >= c || seen[d as usize] {
            return Err(SnapshotError::Malformed {
                section: "by_size",
                detail: format!("rank {rank} entry {d} is out of range or repeated"),
            });
        }
        seen[d as usize] = true;
    }
    // comp_of ids must be in range, in first-appearance canonical form,
    // and agree with the labeling's partition classes (each dense id
    // carries exactly one label value) — one fused pass over n.
    let mut label_of = vec![0u64; c];
    let mut opened = vec![false; c];
    let mut next: ComponentId = 0;
    for (v, (&d, &label)) in comp_of.iter().zip(labels).enumerate() {
        if d as usize >= c {
            return Err(SnapshotError::Malformed {
                section: "comp_of",
                detail: format!("vertex {v} names component {d} of {c}"),
            });
        }
        if !opened[d as usize] {
            if d != next {
                return Err(SnapshotError::Malformed {
                    section: "comp_of",
                    detail: format!("vertex {v} opens component {d}, expected {next}"),
                });
            }
            opened[d as usize] = true;
            label_of[d as usize] = label;
            next += 1;
        } else if label_of[d as usize] != label {
            return Err(SnapshotError::Malformed {
                section: "labeling",
                detail: format!("vertex {v} label disagrees with its component's"),
            });
        }
    }
    if (next as usize) != c {
        return Err(SnapshotError::Malformed {
            section: "comp_of",
            detail: format!("only {next} of {c} components appear"),
        });
    }

    // The endianness probe already guaranteed file order == native order,
    // so the validated in-place view copies out as one memmove — no
    // per-element decode on the boot path.
    let labeling = Labeling(labels.to_vec());

    let file_bytes = bytes.len();
    let (co, of, me, bs) =
        (comp_of_s.byte_off, offsets_s.byte_off, members_s.byte_off, by_size_s.byte_off);
    // SAFETY: sections are in-bounds, aligned, and fully validated above;
    // the Arc keeps the buffer alive for the index's lifetime.
    let index = unsafe {
        ComponentIndex::from_snapshot_buf(buf.clone(), (co, n), (of, c + 1), (me, n), (bs, c))
    };
    Ok(Snapshot { index, labeling, graph_n, graph_m, algorithm, file_bytes })
}

/// Decodes a snapshot from an in-memory image (copies once into an
/// aligned buffer). Test and tooling entry point; the file path is
/// [`load`].
pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    decode_buf(Arc::new(SnapshotBuf::copy_of(bytes)))
}

/// Loads a snapshot from disk: one bulk read into an aligned buffer,
/// header + checksum validation, in-place section reinterpretation.
pub fn load(path: &Path) -> Result<Snapshot, SnapshotError> {
    let timer = ampc_obs::Timer::start(ampc_obs::hist(ampc_obs::HistId::SnapshotBootNs));
    fail::check(fail::SNAPSHOT_LOAD)?;
    let mut f = File::open(path)?;
    let len = f.metadata()?.len();
    if len > usize::MAX as u64 {
        return Err(SnapshotError::HeaderCorrupt {
            detail: format!("file of {len} bytes cannot be addressed"),
        });
    }
    let mut buf = SnapshotBuf::with_len(len as usize);
    f.read_exact(buf.as_bytes_mut())?;
    let snap = decode_buf(Arc::new(buf))?;
    let elapsed = timer.stop();
    ampc_obs::counter(ampc_obs::CounterId::SnapshotBoots).inc();
    ampc_obs::counter(ampc_obs::CounterId::SnapshotBootBytes).add(len);
    ampc_obs::trace(ampc_obs::TraceKind::SnapshotBooted, len, elapsed);
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> (ComponentIndex, Labeling) {
        let labeling = Labeling(vec![7, 9, 7, 3, 9, 7, 3, 11]);
        (ComponentIndex::build(&labeling), labeling)
    }

    #[test]
    fn checksum_is_length_and_content_sensitive() {
        assert_ne!(checksum(b""), checksum(b"\0"));
        assert_ne!(checksum(b"\0"), checksum(b"\0\0"));
        assert_ne!(checksum(b"abcdefgh"), checksum(b"abcdefgi"));
        // A flip in the zero-padded tail region still changes the digest.
        assert_ne!(checksum(b"abc"), checksum(b"ab\x63\x01"));
        assert_eq!(checksum(b"abcdefgh12345"), checksum(b"abcdefgh12345"));
    }

    #[test]
    fn encode_decode_roundtrip_preserves_everything() {
        let (index, labeling) = sample_index();
        let bytes = encode(&index, &labeling, 8, 5, 2);
        assert_eq!(bytes.len() % 8, 0);
        let snap = decode(&bytes).expect("roundtrip");
        assert!(snap.index.is_snapshot_backed());
        assert_eq!(snap.index, index);
        assert_eq!(snap.labeling, labeling);
        assert_eq!(snap.graph_n, 8);
        assert_eq!(snap.graph_m, 5);
        assert_eq!(snap.algorithm, 2);
        assert_eq!(snap.file_bytes, bytes.len());
        // The booted index answers identically, including rankings.
        assert_eq!(snap.index.top_k(4), index.top_k(4));
        for v in 0..8 {
            assert_eq!(snap.index.component_of(v), index.component_of(v));
        }
    }

    #[test]
    fn empty_index_roundtrips() {
        let labeling = Labeling(vec![]);
        let index = ComponentIndex::build(&labeling);
        let bytes = encode(&index, &labeling, 0, 0, 1);
        let snap = decode(&bytes).expect("empty roundtrip");
        assert_eq!(snap.index.num_vertices(), 0);
        assert_eq!(snap.index.num_components(), 0);
        assert_eq!(snap.labeling.len(), 0);
    }

    #[test]
    fn atomic_persist_and_load() {
        let (index, labeling) = sample_index();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ampc_snap_test_{}.snap", std::process::id()));
        let bytes = persist(&path, &index, &labeling, 8, 5, 1).expect("persist");
        let snap = load(&path).expect("load");
        assert_eq!(snap.file_bytes as u64, bytes);
        assert_eq!(snap.index, index);
        assert_eq!(snap.algorithm, 1);
        std::fs::remove_file(&path).unwrap();
        // Loading a missing file is an Io error, not a panic.
        assert!(matches!(load(&path), Err(SnapshotError::Io(_))));
    }

    #[test]
    fn concurrent_persists_to_one_path_never_tear() {
        // Temp names are unique per call, so two handles racing on the
        // same destination from one process must each stage privately;
        // whatever wins the rename race, the destination always loads as
        // one complete snapshot. (The old `tmp.{pid}` scheme collided
        // here: one thread's rename could steal the other's half-written
        // temp file.)
        let (index_a, labeling_a) = sample_index();
        let labeling_b = Labeling(vec![1, 2, 1, 2, 1, 2, 1, 2]);
        let index_b = ComponentIndex::build(&labeling_b);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ampc_snap_race_{}.snap", std::process::id()));
        let (pa, pb) = (&path, &path);
        let (ia, la) = (&index_a, &labeling_a);
        let (ib, lb) = (&index_b, &labeling_b);
        std::thread::scope(|s| {
            let a = s.spawn(move || {
                for _ in 0..20 {
                    persist(pa, ia, la, 8, 5, 1).expect("persist a");
                }
            });
            let b = s.spawn(move || {
                for _ in 0..20 {
                    persist(pb, ib, lb, 8, 4, 2).expect("persist b");
                }
            });
            a.join().unwrap();
            b.join().unwrap();
        });
        let snap = load(&path).expect("racing persists must leave a loadable file");
        assert!(snap.index == index_a || snap.index == index_b);
        // No temp litter left behind by clean completions.
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let n = e.file_name().to_string_lossy().into_owned();
                n.starts_with(&stem) && n.contains(".tmp.")
            })
            .collect();
        assert!(litter.is_empty(), "clean persists must not strand temp files: {litter:?}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_tmp_litter_never_breaks_persist_or_load() {
        let (index, labeling) = sample_index();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ampc_snap_litter_{}.snap", std::process::id()));
        // Strand plausible-looking crash litter next to the destination,
        // including one with the legacy fixed name.
        let litter = [
            path.with_extension(format!("tmp.{}", std::process::id())),
            path.with_extension(format!("tmp.{}.0", std::process::id())),
            path.with_extension("tmp.99999.7"),
        ];
        for l in &litter {
            std::fs::write(l, b"torn half-written garbage").unwrap();
        }
        persist(&path, &index, &labeling, 8, 5, 1).expect("persist over litter");
        let snap = load(&path).expect("load with litter present");
        assert_eq!(snap.index, index);
        for l in &litter {
            let _ = std::fs::remove_file(l);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_foreign_and_damaged_headers() {
        let (index, labeling) = sample_index();
        let good = encode(&index, &labeling, 8, 5, 1);

        assert!(matches!(decode(&good[..100]), Err(SnapshotError::Truncated { .. })));
        assert!(matches!(decode(b"not a snapshot"), Err(SnapshotError::Truncated { .. })));

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode(&bad), Err(SnapshotError::BadMagic)));

        let mut bad = good.clone();
        bad[12..16].copy_from_slice(&ENDIAN_TAG.to_be_bytes());
        assert!(matches!(decode(&bad), Err(SnapshotError::EndiannessMismatch)));

        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(decode(&bad), Err(SnapshotError::UnsupportedVersion { found: 99 })));

        // Any other header flip trips the header checksum.
        let mut bad = good.clone();
        bad[17] ^= 0x40; // graph_n
        assert!(matches!(decode(&bad), Err(SnapshotError::HeaderCorrupt { .. })));

        // Flip the header checksum itself.
        let mut bad = good.clone();
        bad[HEADER_CHECKSUM_OFFSET] ^= 1;
        assert!(matches!(decode(&bad), Err(SnapshotError::HeaderCorrupt { .. })));

        // Truncation inside the payload is Truncated, not a panic.
        let bad = &good[..good.len() - 8];
        assert!(matches!(decode(bad), Err(SnapshotError::Truncated { .. })));

        // Trailing garbage is rejected too.
        let mut bad = good.clone();
        bad.extend_from_slice(&[0u8; 8]);
        assert!(matches!(decode(&bad), Err(SnapshotError::HeaderCorrupt { .. })));
    }

    #[test]
    fn payload_bit_flips_trip_section_checksums() {
        let (index, labeling) = sample_index();
        let good = encode(&index, &labeling, 8, 5, 1);
        let table = section_table(&good).expect("good table");
        for s in table {
            if s.byte_len == 0 {
                continue;
            }
            let mut bad = good.clone();
            bad[s.byte_off] ^= 0x01;
            match decode(&bad) {
                Err(SnapshotError::ChecksumMismatch { section }) => assert_eq!(section, s.name),
                other => panic!(
                    "flip in `{}` gave {:?}, expected its checksum to trip",
                    s.name,
                    other.err().map(|e| e.to_string())
                ),
            }
        }
    }

    #[test]
    fn resigned_semantic_corruption_is_still_rejected() {
        let (index, labeling) = sample_index();
        let good = encode(&index, &labeling, 8, 5, 1);
        let table = section_table(&good).expect("good table");
        let [_, offsets_s, members_s, _, _] = table;

        // Helper: overwrite bytes, recompute the touched section checksum
        // and the header checksum — the file is then self-consistent and
        // only semantic validation can catch it.
        let resign = |bytes: &mut [u8], s: &SectionInfo| {
            let digest = checksum(&bytes[s.byte_off..s.byte_off + s.byte_len]);
            bytes[s.checksum_slot..s.checksum_slot + 8].copy_from_slice(&digest.to_le_bytes());
            let h = checksum(&bytes[..HEADER_CHECKSUM_OFFSET]);
            bytes[HEADER_CHECKSUM_OFFSET..HEADER_LEN].copy_from_slice(&h.to_le_bytes());
        };

        // Non-monotone offsets.
        let mut bad = good.clone();
        bad[offsets_s.byte_off + 8..offsets_s.byte_off + 16]
            .copy_from_slice(&u64::MAX.to_le_bytes());
        resign(&mut bad, &offsets_s);
        assert!(
            matches!(decode(&bad), Err(SnapshotError::Malformed { section: "offsets", .. })),
            "non-monotone offsets must be rejected"
        );

        // Out-of-range member vertex.
        let mut bad = good.clone();
        bad[members_s.byte_off..members_s.byte_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        resign(&mut bad, &members_s);
        assert!(
            matches!(decode(&bad), Err(SnapshotError::Malformed { section: "members", .. })),
            "out-of-range member must be rejected"
        );
    }
}
