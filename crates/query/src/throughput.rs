//! Shared throughput measurement for the serving layer.
//!
//! The CLI `query` subcommand and the `query_throughput` bench time the
//! same two code paths — one `answer` call per query vs. batched
//! `answer_batch` chunks — so the timed loops live here, once. Both
//! return `(queries/sec, checksum)`: the wrapping answer sum guards
//! against dead-code elimination and must agree between the two paths
//! (the answers *are* the computation, so a divergent checksum means a
//! broken engine).

use std::time::Instant;

use crate::engine::{Query, QueryEngine};

/// Times one pass of per-call answering over `queries`.
pub fn single_pass(engine: &QueryEngine, queries: &[Query]) -> (f64, u64) {
    let t0 = Instant::now();
    let mut checksum = 0u64;
    for &q in queries {
        checksum = checksum.wrapping_add(engine.answer(q));
    }
    ampc_obs::counter(ampc_obs::CounterId::QueriesServed).add(queries.len() as u64);
    (queries.len() as f64 / t0.elapsed().as_secs_f64(), checksum)
}

/// Times **each query individually** into `hist` (and the process-wide
/// `query_latency_ns` histogram), returning the checksum. This is a
/// separate pass from the throughput loops above on purpose: two clock
/// reads per query put a floor of tens of nanoseconds under every sample,
/// which would depress the q/s numbers if folded into the timed passes —
/// distributions and throughput are measured by different loops over the
/// same engine.
pub fn latency_pass(engine: &QueryEngine, queries: &[Query], hist: &ampc_obs::Histogram) -> u64 {
    timed_pass(engine, queries, hist, ampc_obs::hist(ampc_obs::HistId::QueryLatencyNs), |_| {})
}

/// The factored core of [`latency_pass`]: answers every query, timing each
/// one into both `hist` and `global`, feeding each answer to `sink`, and
/// returning the wrapping checksum.
///
/// The split exists for the network path: an in-process latency pass
/// records into the process-wide `query_latency_ns` histogram and discards
/// answers, while a network server worker records the same per-query spans
/// into `net_request_service_ns` **and keeps the answers** to encode a
/// reply frame — so wire latency (measured client-side around the round
/// trip) and server-side service latency come out as two separate
/// histograms instead of one conflated number.
pub fn timed_pass(
    engine: &QueryEngine,
    queries: &[Query],
    hist: &ampc_obs::Histogram,
    global: &ampc_obs::Histogram,
    mut sink: impl FnMut(u64),
) -> u64 {
    let mut checksum = 0u64;
    for &q in queries {
        let t0 = Instant::now();
        let answer = engine.answer(q);
        let ns = t0.elapsed().as_nanos() as u64;
        hist.record(ns);
        global.record(ns);
        checksum = checksum.wrapping_add(answer);
        sink(answer);
    }
    ampc_obs::counter(ampc_obs::CounterId::QueriesServed).add(queries.len() as u64);
    checksum
}

/// Times one pass of batched answering over `queries` in chunks of
/// `batch`, reusing `buf` as the answer buffer across chunks.
///
/// # Panics
/// Panics if `batch` is zero.
pub fn batched_pass(
    engine: &QueryEngine,
    queries: &[Query],
    batch: usize,
    buf: &mut Vec<u64>,
) -> (f64, u64) {
    assert!(batch > 0, "batch size must be positive");
    let t0 = Instant::now();
    let mut checksum = 0u64;
    for chunk in queries.chunks(batch) {
        buf.resize(chunk.len(), 0);
        engine.answer_batch(chunk, buf).expect("buf was resized to the chunk length");
        for &a in buf.iter() {
            checksum = checksum.wrapping_add(a);
        }
    }
    ampc_obs::counter(ampc_obs::CounterId::QueriesServed).add(queries.len() as u64);
    (queries.len() as f64 / t0.elapsed().as_secs_f64(), checksum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ComponentIndex;
    use crate::workload::{self, Mix};
    use ampc_graph::Labeling;

    #[test]
    fn single_and_batched_checksums_agree() {
        let idx = ComponentIndex::build(&Labeling(vec![0, 0, 1, 1, 2, 2, 2, 3]));
        let engine = QueryEngine::new(&idx);
        let queries = workload::generate(&idx, Mix::Uniform, 500, 13);
        let (_, single) = single_pass(&engine, &queries);
        let mut buf = Vec::new();
        // Several batch sizes, incl. one that doesn't divide the count.
        for batch in [1, 7, 64, 1024] {
            let (_, batched) = batched_pass(&engine, &queries, batch, &mut buf);
            assert_eq!(single, batched, "batch={batch}");
        }
    }

    #[test]
    fn empty_workload_is_a_zero_checksum() {
        let idx = ComponentIndex::build(&Labeling(vec![1, 2]));
        let engine = QueryEngine::new(&idx);
        let (_, sum) = single_pass(&engine, &[]);
        assert_eq!(sum, 0);
        let (_, sum) = batched_pass(&engine, &[], 16, &mut Vec::new());
        assert_eq!(sum, 0);
    }
}
