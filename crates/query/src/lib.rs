//! # `ampc-query` — the read path of the connectivity system
//!
//! The pipelines in `ampc-cc` end where a `Labeling` begins; this crate is
//! what *serves* that labeling. It turns one finished run into an immutable,
//! cache-friendly structure that answers connectivity queries at memory
//! speed:
//!
//! * [`ComponentIndex`] — labels rank-remapped to dense
//!   `0..num_components` component ids, a per-component size array, a
//!   CSR-style member list (component → sorted vertices), and a
//!   by-size ordering, so [`ComponentIndex::connected`],
//!   [`ComponentIndex::component_of`], [`ComponentIndex::component_size`],
//!   and [`ComponentIndex::top_k`] are all O(1) array reads with no
//!   hashing on the query path;
//! * [`QueryEngine`] — single-query and batch (slice-in/slice-out,
//!   allocation-free) execution of the [`Query`] algebra, with a checked
//!   contract for out-of-range vertices ([`QueryEngine::try_answer`] /
//!   the [`NO_ANSWER`] sentinel — a hostile query file or a stream built
//!   against an older, larger epoch never panics a serving thread) and an
//!   optional merge-aware path through a journal;
//! * [`JournalView`] — a frozen batch of component merges over a base
//!   index (`O(components)` to build and hold), the read side of the
//!   serving layer's incremental journal-epochs: resolves base dense ids
//!   to merged dense ids in one extra array read, byte-identical to a
//!   from-scratch rebuild of the merged graph;
//! * [`snapshot`] — versioned, checksummed on-disk persistence of an
//!   index + labeling in the exact fixed-width layout the in-memory
//!   arrays use, so a replica boot is one bulk read plus validation and
//!   in-place reinterpretation — zero per-element deserialization
//!   ([`ComponentIndex`] arrays are owned `Vec`s when built live, or
//!   borrowed views over the snapshot buffer when booted from disk;
//!   query code cannot tell the difference);
//! * [`workload`] — deterministic SplitMix64-seeded query-mix generators
//!   (uniform, Zipf-skewed, adversarial cross-component) in the same style
//!   as the graph generators, plus a plain-text query-file format;
//! * [`throughput`] — the timed single-call and batched passes shared by
//!   the CLI's `query` subcommand and the `query_throughput` bench.
//!
//! The index is **immutable by design**: a build is a pure function of the
//! labeling's partition (dense ids are assigned by minimum member vertex,
//! not by the arbitrary input label values), so two labelings that induce
//! the same partition — e.g. an AMPC run and the union-find reference —
//! build byte-identical indexes. That determinism is what the
//! cross-validation matrix pins.

#![warn(missing_docs)]

mod engine;
mod index;
pub mod journal;
pub mod snapshot;
pub mod throughput;
pub mod workload;

pub use engine::{BatchLenError, Query, QueryEngine, NO_ANSWER};
pub use index::{ComponentId, ComponentIndex};
pub use journal::JournalView;
pub use snapshot::{Snapshot, SnapshotError};
