//! Immutable component index: a finished run, frozen for serving.
//!
//! [`ComponentIndex::build`] rank-remaps the arbitrary 64-bit labels of a
//! [`Labeling`] to dense component ids `0..num_components`, assigned in
//! order of each component's minimum member vertex. The remapping makes the
//! index a pure function of the *partition* rather than of the label
//! values, so an AMPC run and the sequential union-find reference build
//! byte-identical indexes — and it shrinks the per-vertex word from `u64`
//! to `u32`, halving the hot array.
//!
//! Query-path layout (no hashing anywhere):
//!
//! ```text
//! comp_of : Vec<u32>        vertex   → dense component id
//! offsets : Vec<usize>      component → member-list slice bounds (CSR)
//! members : Vec<VertexId>   concatenated member lists, sorted per component
//! by_size : Vec<u32>        component ids, largest component first
//! ```

use std::collections::HashMap;

use ampc_graph::{Graph, Labeling, VertexId};

/// Dense component identifier in `0..num_components`.
pub type ComponentId = u32;

/// An immutable connectivity index over one labeling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentIndex {
    comp_of: Vec<ComponentId>,
    offsets: Vec<usize>,
    members: Vec<VertexId>,
    by_size: Vec<ComponentId>,
}

impl ComponentIndex {
    /// Builds the index from a labeling.
    ///
    /// Dense ids are assigned in order of first appearance scanning
    /// vertices `0..n`, i.e. components are numbered by their minimum
    /// member vertex — deterministic for any labeling of the same
    /// partition. The only hashing happens here, once, at build time.
    pub fn build(labeling: &Labeling) -> Self {
        let n = labeling.len();
        let mut dense: HashMap<u64, ComponentId> = HashMap::new();
        let mut comp_of = Vec::with_capacity(n);
        for (_, label) in labeling.iter() {
            let next = dense.len() as ComponentId;
            comp_of.push(*dense.entry(label).or_insert(next));
        }
        let c = dense.len();

        // Counting sort of vertices by component: offsets then fill. The
        // vertex scan is in increasing order, so each member list comes out
        // sorted without a per-component sort.
        let mut offsets = vec![0usize; c + 1];
        for &comp in &comp_of {
            offsets[comp as usize + 1] += 1;
        }
        for i in 0..c {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut members = vec![0 as VertexId; n];
        for (v, &comp) in comp_of.iter().enumerate() {
            members[cursor[comp as usize]] = v as VertexId;
            cursor[comp as usize] += 1;
        }

        let mut by_size: Vec<ComponentId> = (0..c as ComponentId).collect();
        // Descending size; ties broken by ascending id — total order, so
        // the ranking is deterministic.
        by_size.sort_by_key(|&comp| {
            (usize::MAX - (offsets[comp as usize + 1] - offsets[comp as usize]), comp)
        });

        ComponentIndex { comp_of, offsets, members, by_size }
    }

    /// Builds the index from a pipeline run over `g`, refusing a labeling
    /// that is not a valid CC-labeling of `g`. This is the constructor the
    /// serving path uses: verify once at build time, then answer queries
    /// with no per-query checks.
    pub fn from_run(g: &Graph, labeling: &Labeling) -> Result<Self, String> {
        if labeling.len() != g.n() {
            return Err(format!(
                "labeling covers {} vertices but the graph has {}",
                labeling.len(),
                g.n()
            ));
        }
        if !labeling.validates(g) {
            return Err("labeling is not a valid CC-labeling of the graph".into());
        }
        Ok(Self::build(labeling))
    }

    /// Number of vertices indexed.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.comp_of.len()
    }

    /// Number of connected components.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Dense component id of `v`. One array read.
    ///
    /// # Panics
    /// Panics if `v` is out of range — serving threads answering queries of
    /// unknown provenance use [`ComponentIndex::try_component_of`] instead.
    #[inline]
    pub fn component_of(&self, v: VertexId) -> ComponentId {
        self.comp_of[v as usize]
    }

    /// Checked [`ComponentIndex::component_of`]: `None` when `v` is not a
    /// vertex of this epoch's graph. Same cost — the unchecked variant
    /// bounds-checks too, it just panics.
    #[inline]
    pub fn try_component_of(&self, v: VertexId) -> Option<ComponentId> {
        self.comp_of.get(v as usize).copied()
    }

    /// True iff `u` and `v` are in the same component. Two array reads.
    ///
    /// # Panics
    /// Panics if either vertex is out of range; see
    /// [`ComponentIndex::try_connected`].
    #[inline]
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        self.comp_of[u as usize] == self.comp_of[v as usize]
    }

    /// Checked [`ComponentIndex::connected`]: `None` when either vertex is
    /// out of range.
    #[inline]
    pub fn try_connected(&self, u: VertexId, v: VertexId) -> Option<bool> {
        Some(self.try_component_of(u)? == self.try_component_of(v)?)
    }

    /// Number of vertices in component `c`. Two array reads.
    #[inline]
    pub fn size_of(&self, c: ComponentId) -> usize {
        self.offsets[c as usize + 1] - self.offsets[c as usize]
    }

    /// Size of the component containing `v`. Three array reads.
    ///
    /// # Panics
    /// Panics if `v` is out of range; see
    /// [`ComponentIndex::try_component_size`].
    #[inline]
    pub fn component_size(&self, v: VertexId) -> usize {
        self.size_of(self.comp_of[v as usize])
    }

    /// Checked [`ComponentIndex::component_size`]: `None` when `v` is out
    /// of range.
    #[inline]
    pub fn try_component_size(&self, v: VertexId) -> Option<usize> {
        Some(self.size_of(self.try_component_of(v)?))
    }

    /// Sorted member vertices of component `c`. A slice borrow, no copy.
    #[inline]
    pub fn members(&self, c: ComponentId) -> &[VertexId] {
        &self.members[self.offsets[c as usize]..self.offsets[c as usize + 1]]
    }

    /// The (at most) `k` largest components, largest first, ties by
    /// ascending component id. A slice borrow of the precomputed ranking.
    #[inline]
    pub fn top_k(&self, k: usize) -> &[ComponentId] {
        &self.by_size[..k.min(self.by_size.len())]
    }

    /// Size of the `rank`-th largest component (1-based), or 0 when there
    /// are fewer than `rank` components.
    #[inline]
    pub fn kth_largest_size(&self, rank: usize) -> usize {
        if rank == 0 || rank > self.by_size.len() {
            return 0;
        }
        self.size_of(self.by_size[rank - 1])
    }

    /// Heap footprint of the index in bytes (the serving-capacity number).
    pub fn heap_bytes(&self) -> usize {
        self.comp_of.len() * std::mem::size_of::<ComponentId>()
            + self.offsets.len() * std::mem::size_of::<usize>()
            + self.members.len() * std::mem::size_of::<VertexId>()
            + self.by_size.len() * std::mem::size_of::<ComponentId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::reference_components;

    fn index_of(labels: &[u64]) -> ComponentIndex {
        ComponentIndex::build(&Labeling(labels.to_vec()))
    }

    #[test]
    fn dense_ids_follow_minimum_member_order() {
        // Labels are arbitrary; component of vertex 0 must get id 0.
        let idx = index_of(&[90, 5, 90, 5, 7]);
        assert_eq!(idx.num_components(), 3);
        assert_eq!(idx.component_of(0), 0);
        assert_eq!(idx.component_of(1), 1);
        assert_eq!(idx.component_of(4), 2);
        assert!(idx.connected(0, 2));
        assert!(idx.connected(1, 3));
        assert!(!idx.connected(0, 1));
    }

    #[test]
    fn index_is_a_function_of_the_partition() {
        // Same partition under different label values ⇒ identical index.
        let a = index_of(&[7, 7, 7, 9, 9, 9]);
        let b = index_of(&[100, 100, 100, 3, 3, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn members_are_sorted_and_partition_the_vertices() {
        let idx = index_of(&[1, 2, 1, 3, 2, 1]);
        let mut seen = Vec::new();
        for c in 0..idx.num_components() as ComponentId {
            let m = idx.members(c);
            assert!(m.windows(2).all(|w| w[0] < w[1]), "members of {c} not sorted");
            assert_eq!(m.len(), idx.size_of(c));
            seen.extend_from_slice(m);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..6).collect::<Vec<_>>());
        assert_eq!(idx.members(0), &[0, 2, 5]);
    }

    #[test]
    fn top_k_ranks_by_size_then_id() {
        // Sizes: comp0=2, comp1=3, comp2=2, comp3=1.
        let idx = index_of(&[1, 2, 2, 1, 2, 5, 5, 9]);
        assert_eq!(idx.top_k(10), &[1, 0, 2, 3]);
        assert_eq!(idx.top_k(2), &[1, 0]);
        assert_eq!(idx.top_k(0), &[] as &[ComponentId]);
        assert_eq!(idx.kth_largest_size(1), 3);
        assert_eq!(idx.kth_largest_size(2), 2);
        assert_eq!(idx.kth_largest_size(4), 1);
        assert_eq!(idx.kth_largest_size(5), 0);
        assert_eq!(idx.kth_largest_size(0), 0);
    }

    #[test]
    fn checked_variants_reject_out_of_range_vertices() {
        let idx = index_of(&[1, 2, 1]);
        assert_eq!(idx.try_component_of(0), Some(0));
        assert_eq!(idx.try_component_of(2), Some(0));
        assert_eq!(idx.try_component_of(3), None);
        assert_eq!(idx.try_component_of(u32::MAX), None);
        assert_eq!(idx.try_connected(0, 2), Some(true));
        assert_eq!(idx.try_connected(0, 1), Some(false));
        assert_eq!(idx.try_connected(0, 3), None);
        assert_eq!(idx.try_connected(9, 0), None);
        assert_eq!(idx.try_component_size(1), Some(1));
        assert_eq!(idx.try_component_size(3), None);
        // The empty index rejects every vertex.
        let empty = index_of(&[]);
        assert_eq!(empty.try_component_of(0), None);
    }

    #[test]
    fn empty_labeling_builds_an_empty_index() {
        let idx = index_of(&[]);
        assert_eq!(idx.num_vertices(), 0);
        assert_eq!(idx.num_components(), 0);
        assert_eq!(idx.top_k(3), &[] as &[ComponentId]);
        assert_eq!(idx.kth_largest_size(1), 0);
    }

    #[test]
    fn from_run_validates_against_the_graph() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let good = reference_components(&g);
        let idx = ComponentIndex::from_run(&g, &good).expect("valid labeling");
        assert_eq!(idx.num_components(), 2);
        // Merging the two true components must be rejected.
        assert!(ComponentIndex::from_run(&g, &Labeling(vec![1; 6])).is_err());
        // Wrong length must be rejected.
        assert!(ComponentIndex::from_run(&g, &Labeling(vec![1, 1, 1])).is_err());
    }

    #[test]
    fn matches_reference_on_a_real_graph() {
        let g = Graph::from_edges(9, &[(0, 3), (3, 6), (1, 4), (2, 5), (5, 8), (8, 2)]);
        let truth = reference_components(&g);
        let idx = ComponentIndex::build(&truth);
        for u in 0..9u32 {
            for v in 0..9u32 {
                assert_eq!(idx.connected(u, v), truth.get(u) == truth.get(v), "({u},{v})");
            }
            assert_eq!(idx.component_size(u), truth.component_sizes()[&truth.get(u)]);
        }
        assert!(idx.heap_bytes() > 0);
    }
}
