//! Immutable component index: a finished run, frozen for serving.
//!
//! [`ComponentIndex::build`] rank-remaps the arbitrary 64-bit labels of a
//! [`Labeling`] to dense component ids `0..num_components`, assigned in
//! order of each component's minimum member vertex. The remapping makes the
//! index a pure function of the *partition* rather than of the label
//! values, so an AMPC run and the sequential union-find reference build
//! byte-identical indexes — and it shrinks the per-vertex word from `u64`
//! to `u32`, halving the hot array.
//!
//! Query-path layout (no hashing anywhere):
//!
//! ```text
//! comp_of : [u32]        vertex   → dense component id
//! offsets : [u64]        component → member-list slice bounds (CSR)
//! members : [VertexId]   concatenated member lists, sorted per component
//! by_size : [u32]        component ids, largest component first
//! ```
//!
//! The four arrays are plain fixed-width words (`offsets` is `u64`, not
//! `usize`, precisely so the in-memory layout *is* the on-disk layout of
//! [`crate::snapshot`]) and can be **owned** (`Vec`s, the product of a live
//! [`ComponentIndex::build`]) or **borrowed** in place from a loaded
//! snapshot buffer. Either way the hot path reads through the same raw
//! slices — no enum dispatch, no hashing, no deserialization.

use std::sync::Arc;

use ampc_graph::{Graph, Labeling, VertexId};

use crate::snapshot::SnapshotBuf;

/// Dense component identifier in `0..num_components`.
pub type ComponentId = u32;

/// A borrowed fixed-width section: raw pointer + element count. The
/// pointee is owned by the index's [`Storage`] (a `Vec`'s heap buffer or a
/// shared snapshot buffer), both of which keep their allocation at a
/// stable address for the index's whole lifetime, so the pointer stays
/// valid even as the `ComponentIndex` value itself moves.
struct RawSlice<T> {
    ptr: *const T,
    len: usize,
}

impl<T> Clone for RawSlice<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for RawSlice<T> {}

impl<T> RawSlice<T> {
    fn of(s: &[T]) -> Self {
        RawSlice { ptr: s.as_ptr(), len: s.len() }
    }

    /// # Safety
    /// The caller must guarantee the pointee outlives `'a` and is never
    /// mutated — upheld by tying every call to `&self` of the owning
    /// [`ComponentIndex`], whose `storage` keeps the buffer alive and
    /// immutable.
    #[inline]
    unsafe fn get<'a>(&self) -> &'a [T] {
        std::slice::from_raw_parts(self.ptr, self.len)
    }
}

/// What owns the bytes behind the four sections.
enum Storage {
    /// A live build: the index owns its arrays.
    Owned {
        #[allow(dead_code)]
        comp_of: Vec<ComponentId>,
        #[allow(dead_code)]
        offsets: Vec<u64>,
        #[allow(dead_code)]
        members: Vec<VertexId>,
        #[allow(dead_code)]
        by_size: Vec<ComponentId>,
    },
    /// A booted snapshot: the sections are views into one shared,
    /// alignment-guaranteed buffer (zero per-element deserialization).
    Snapshot(#[allow(dead_code)] Arc<SnapshotBuf>),
}

/// An immutable connectivity index over one labeling.
pub struct ComponentIndex {
    comp_of: RawSlice<ComponentId>,
    offsets: RawSlice<u64>,
    members: RawSlice<VertexId>,
    by_size: RawSlice<ComponentId>,
    storage: Storage,
}

// SAFETY: the raw slices point into `storage`, which is `Send + Sync`
// (`Vec`s / `Arc<SnapshotBuf>` of plain words) and is never mutated after
// construction; sharing immutable views of it across threads is sound.
unsafe impl Send for ComponentIndex {}
unsafe impl Sync for ComponentIndex {}

/// Open-addressed `u64 label → ComponentId` table, sized from the labeling
/// so the load factor never exceeds 1/2 and no resize ever happens.
/// Replaces the `HashMap::entry` probe that dominated index builds: one
/// multiply-xorshift mix plus linear probing over flat arrays.
struct LabelInterner {
    keys: Vec<u64>,
    /// `ComponentId::MAX` marks an empty slot. A real id can never collide
    /// with the sentinel: ids are `0..c` with `c ≤ n ≤ u32::MAX`, so the
    /// largest assignable id is `u32::MAX - 1`.
    vals: Vec<ComponentId>,
    mask: usize,
    len: ComponentId,
}

/// SplitMix64 finalizer — the same full-avalanche mix family the DHT's
/// `PackedKeyHasher` uses, so adversarial label values cannot cluster.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl LabelInterner {
    fn sized_for(n: usize) -> Self {
        // ≤ n distinct labels can occur, so 2n slots (next power of two)
        // bound the load factor at 1/2 — probes stay O(1) expected.
        let cap = (n.max(8) * 2).next_power_of_two();
        LabelInterner {
            keys: vec![0; cap],
            vals: vec![ComponentId::MAX; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Dense id of `label`, assigning the next id on first sight.
    #[inline]
    fn intern(&mut self, label: u64) -> ComponentId {
        let mut i = (mix64(label) as usize) & self.mask;
        loop {
            let v = self.vals[i];
            if v == ComponentId::MAX {
                let id = self.len;
                self.keys[i] = label;
                self.vals[i] = id;
                self.len += 1;
                return id;
            }
            if self.keys[i] == label {
                return v;
            }
            i = (i + 1) & self.mask;
        }
    }
}

impl ComponentIndex {
    /// Builds an index that owns its arrays, wiring up the raw section
    /// views. Moving a `Vec` moves only its (ptr, len, cap) triple — the
    /// heap buffer the views point into stays put.
    fn from_owned(
        comp_of: Vec<ComponentId>,
        offsets: Vec<u64>,
        members: Vec<VertexId>,
        by_size: Vec<ComponentId>,
    ) -> Self {
        ComponentIndex {
            comp_of: RawSlice::of(&comp_of),
            offsets: RawSlice::of(&offsets),
            members: RawSlice::of(&members),
            by_size: RawSlice::of(&by_size),
            storage: Storage::Owned { comp_of, offsets, members, by_size },
        }
    }

    /// Builds an index whose sections are in-place views of `buf` — the
    /// zero-copy boot path. Each section is `(byte_offset, element_count)`
    /// into the buffer.
    ///
    /// # Safety
    /// Every section must lie within `buf`, be aligned for its element
    /// type, and already be validated ([`crate::snapshot`] checks bounds,
    /// alignment, checksums, and value ranges before calling this).
    pub(crate) unsafe fn from_snapshot_buf(
        buf: Arc<SnapshotBuf>,
        comp_of: (usize, usize),
        offsets: (usize, usize),
        members: (usize, usize),
        by_size: (usize, usize),
    ) -> Self {
        let base = buf.as_bytes().as_ptr();
        let section = |(off, len): (usize, usize)| RawSlice {
            // SAFETY: caller guarantees `off` is in bounds of the buffer.
            ptr: unsafe { base.add(off) } as *const ComponentId,
            len,
        };
        ComponentIndex {
            comp_of: section(comp_of),
            offsets: RawSlice {
                // SAFETY: as above.
                ptr: unsafe { base.add(offsets.0) } as *const u64,
                len: offsets.1,
            },
            members: section(members),
            by_size: section(by_size),
            storage: Storage::Snapshot(buf),
        }
    }

    /// Builds the index from a labeling.
    ///
    /// Dense ids are assigned in order of first appearance scanning
    /// vertices `0..n`, i.e. components are numbered by their minimum
    /// member vertex — deterministic for any labeling of the same
    /// partition. The only hashing happens here, once, at build time, in
    /// a flat open-addressed table sized from the labeling.
    pub fn build(labeling: &Labeling) -> Self {
        let n = labeling.len();
        let mut interner = LabelInterner::sized_for(n);
        let mut comp_of = Vec::with_capacity(n);
        for &label in &labeling.0 {
            comp_of.push(interner.intern(label));
        }
        let c = interner.len as usize;

        // Counting sort of vertices by component: offsets then fill. The
        // vertex scan is in increasing order, so each member list comes out
        // sorted without a per-component sort.
        let mut offsets = vec![0u64; c + 1];
        for &comp in &comp_of {
            offsets[comp as usize + 1] += 1;
        }
        for i in 0..c {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<usize> = offsets.iter().map(|&o| o as usize).collect();
        let mut members = vec![0 as VertexId; n];
        for (v, &comp) in comp_of.iter().enumerate() {
            members[cursor[comp as usize]] = v as VertexId;
            cursor[comp as usize] += 1;
        }

        let mut by_size: Vec<ComponentId> = (0..c as ComponentId).collect();
        // Descending size; ties broken by ascending id — total order, so
        // the ranking is deterministic.
        by_size.sort_by_key(|&comp| {
            (u64::MAX - (offsets[comp as usize + 1] - offsets[comp as usize]), comp)
        });

        Self::from_owned(comp_of, offsets, members, by_size)
    }

    /// Builds the index from a pipeline run over `g`, refusing a labeling
    /// that is not a valid CC-labeling of `g`. This is the constructor the
    /// serving path uses: verify once at build time, then answer queries
    /// with no per-query checks.
    pub fn from_run(g: &Graph, labeling: &Labeling) -> Result<Self, String> {
        if labeling.len() != g.n() {
            return Err(format!(
                "labeling covers {} vertices but the graph has {}",
                labeling.len(),
                g.n()
            ));
        }
        if !labeling.validates(g) {
            return Err("labeling is not a valid CC-labeling of the graph".into());
        }
        Ok(Self::build(labeling))
    }

    /// The `comp_of` section (vertex → dense component id).
    #[inline]
    pub(crate) fn comp_of_slice(&self) -> &[ComponentId] {
        // SAFETY: `storage` owns the pointee and is immutable; see RawSlice.
        unsafe { self.comp_of.get() }
    }

    /// The CSR `offsets` section (fixed-width, snapshot-identical layout).
    #[inline]
    pub(crate) fn offsets_slice(&self) -> &[u64] {
        // SAFETY: as above.
        unsafe { self.offsets.get() }
    }

    /// The `members` section (concatenated sorted member lists).
    #[inline]
    pub(crate) fn members_slice(&self) -> &[VertexId] {
        // SAFETY: as above.
        unsafe { self.members.get() }
    }

    /// The `by_size` ranking section.
    #[inline]
    pub(crate) fn by_size_slice(&self) -> &[ComponentId] {
        // SAFETY: as above.
        unsafe { self.by_size.get() }
    }

    /// True iff this index borrows its sections from a loaded snapshot
    /// buffer rather than owning them.
    pub fn is_snapshot_backed(&self) -> bool {
        matches!(self.storage, Storage::Snapshot(_))
    }

    /// Number of vertices indexed.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.comp_of.len
    }

    /// Number of connected components.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.offsets.len - 1
    }

    /// Dense component id of `v`. One array read.
    ///
    /// # Panics
    /// Panics if `v` is out of range — serving threads answering queries of
    /// unknown provenance use [`ComponentIndex::try_component_of`] instead.
    #[inline]
    pub fn component_of(&self, v: VertexId) -> ComponentId {
        self.comp_of_slice()[v as usize]
    }

    /// Checked [`ComponentIndex::component_of`]: `None` when `v` is not a
    /// vertex of this epoch's graph. Same cost — the unchecked variant
    /// bounds-checks too, it just panics.
    #[inline]
    pub fn try_component_of(&self, v: VertexId) -> Option<ComponentId> {
        self.comp_of_slice().get(v as usize).copied()
    }

    /// True iff `u` and `v` are in the same component. Two array reads.
    ///
    /// # Panics
    /// Panics if either vertex is out of range; see
    /// [`ComponentIndex::try_connected`].
    #[inline]
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        let comp_of = self.comp_of_slice();
        comp_of[u as usize] == comp_of[v as usize]
    }

    /// Checked [`ComponentIndex::connected`]: `None` when either vertex is
    /// out of range.
    #[inline]
    pub fn try_connected(&self, u: VertexId, v: VertexId) -> Option<bool> {
        Some(self.try_component_of(u)? == self.try_component_of(v)?)
    }

    /// Number of vertices in component `c`. Two array reads.
    #[inline]
    pub fn size_of(&self, c: ComponentId) -> usize {
        let offsets = self.offsets_slice();
        (offsets[c as usize + 1] - offsets[c as usize]) as usize
    }

    /// Size of the component containing `v`. Three array reads.
    ///
    /// # Panics
    /// Panics if `v` is out of range; see
    /// [`ComponentIndex::try_component_size`].
    #[inline]
    pub fn component_size(&self, v: VertexId) -> usize {
        self.size_of(self.component_of(v))
    }

    /// Checked [`ComponentIndex::component_size`]: `None` when `v` is out
    /// of range.
    #[inline]
    pub fn try_component_size(&self, v: VertexId) -> Option<usize> {
        Some(self.size_of(self.try_component_of(v)?))
    }

    /// Sorted member vertices of component `c`. A slice borrow, no copy.
    #[inline]
    pub fn members(&self, c: ComponentId) -> &[VertexId] {
        let offsets = self.offsets_slice();
        &self.members_slice()[offsets[c as usize] as usize..offsets[c as usize + 1] as usize]
    }

    /// The (at most) `k` largest components, largest first, ties by
    /// ascending component id. A slice borrow of the precomputed ranking.
    #[inline]
    pub fn top_k(&self, k: usize) -> &[ComponentId] {
        let by_size = self.by_size_slice();
        &by_size[..k.min(by_size.len())]
    }

    /// Size of the `rank`-th largest component (1-based), or 0 when there
    /// are fewer than `rank` components.
    #[inline]
    pub fn kth_largest_size(&self, rank: usize) -> usize {
        let by_size = self.by_size_slice();
        if rank == 0 || rank > by_size.len() {
            return 0;
        }
        self.size_of(by_size[rank - 1])
    }

    /// Heap footprint of the index in bytes (the serving-capacity number).
    /// For a snapshot-backed index this is the mapped portion of the
    /// buffer the sections cover.
    pub fn heap_bytes(&self) -> usize {
        self.comp_of.len * std::mem::size_of::<ComponentId>()
            + self.offsets.len * std::mem::size_of::<u64>()
            + self.members.len * std::mem::size_of::<VertexId>()
            + self.by_size.len * std::mem::size_of::<ComponentId>()
    }
}

impl Clone for ComponentIndex {
    /// Cloning always produces an owning index (a snapshot-backed clone
    /// deep-copies its sections out of the shared buffer).
    fn clone(&self) -> Self {
        Self::from_owned(
            self.comp_of_slice().to_vec(),
            self.offsets_slice().to_vec(),
            self.members_slice().to_vec(),
            self.by_size_slice().to_vec(),
        )
    }
}

impl PartialEq for ComponentIndex {
    /// Section-wise equality: an owned index and a snapshot-backed one
    /// loaded from its persisted form compare equal — the representation
    /// is not part of the value.
    fn eq(&self, other: &Self) -> bool {
        self.comp_of_slice() == other.comp_of_slice()
            && self.offsets_slice() == other.offsets_slice()
            && self.members_slice() == other.members_slice()
            && self.by_size_slice() == other.by_size_slice()
    }
}

impl Eq for ComponentIndex {}

impl std::fmt::Debug for ComponentIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComponentIndex")
            .field("num_vertices", &self.num_vertices())
            .field("num_components", &self.num_components())
            .field("snapshot_backed", &self.is_snapshot_backed())
            .field("comp_of", &self.comp_of_slice())
            .field("by_size", &self.by_size_slice())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::reference_components;

    fn index_of(labels: &[u64]) -> ComponentIndex {
        ComponentIndex::build(&Labeling(labels.to_vec()))
    }

    #[test]
    fn dense_ids_follow_minimum_member_order() {
        // Labels are arbitrary; component of vertex 0 must get id 0.
        let idx = index_of(&[90, 5, 90, 5, 7]);
        assert_eq!(idx.num_components(), 3);
        assert_eq!(idx.component_of(0), 0);
        assert_eq!(idx.component_of(1), 1);
        assert_eq!(idx.component_of(4), 2);
        assert!(idx.connected(0, 2));
        assert!(idx.connected(1, 3));
        assert!(!idx.connected(0, 1));
    }

    #[test]
    fn index_is_a_function_of_the_partition() {
        // Same partition under different label values ⇒ identical index.
        let a = index_of(&[7, 7, 7, 9, 9, 9]);
        let b = index_of(&[100, 100, 100, 3, 3, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn members_are_sorted_and_partition_the_vertices() {
        let idx = index_of(&[1, 2, 1, 3, 2, 1]);
        let mut seen = Vec::new();
        for c in 0..idx.num_components() as ComponentId {
            let m = idx.members(c);
            assert!(m.windows(2).all(|w| w[0] < w[1]), "members of {c} not sorted");
            assert_eq!(m.len(), idx.size_of(c));
            seen.extend_from_slice(m);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..6).collect::<Vec<_>>());
        assert_eq!(idx.members(0), &[0, 2, 5]);
    }

    #[test]
    fn top_k_ranks_by_size_then_id() {
        // Sizes: comp0=2, comp1=3, comp2=2, comp3=1.
        let idx = index_of(&[1, 2, 2, 1, 2, 5, 5, 9]);
        assert_eq!(idx.top_k(10), &[1, 0, 2, 3]);
        assert_eq!(idx.top_k(2), &[1, 0]);
        assert_eq!(idx.top_k(0), &[] as &[ComponentId]);
        assert_eq!(idx.kth_largest_size(1), 3);
        assert_eq!(idx.kth_largest_size(2), 2);
        assert_eq!(idx.kth_largest_size(4), 1);
        assert_eq!(idx.kth_largest_size(5), 0);
        assert_eq!(idx.kth_largest_size(0), 0);
    }

    #[test]
    fn checked_variants_reject_out_of_range_vertices() {
        let idx = index_of(&[1, 2, 1]);
        assert_eq!(idx.try_component_of(0), Some(0));
        assert_eq!(idx.try_component_of(2), Some(0));
        assert_eq!(idx.try_component_of(3), None);
        assert_eq!(idx.try_component_of(u32::MAX), None);
        assert_eq!(idx.try_connected(0, 2), Some(true));
        assert_eq!(idx.try_connected(0, 1), Some(false));
        assert_eq!(idx.try_connected(0, 3), None);
        assert_eq!(idx.try_connected(9, 0), None);
        assert_eq!(idx.try_component_size(1), Some(1));
        assert_eq!(idx.try_component_size(3), None);
        // The empty index rejects every vertex.
        let empty = index_of(&[]);
        assert_eq!(empty.try_component_of(0), None);
    }

    #[test]
    fn empty_labeling_builds_an_empty_index() {
        let idx = index_of(&[]);
        assert_eq!(idx.num_vertices(), 0);
        assert_eq!(idx.num_components(), 0);
        assert_eq!(idx.top_k(3), &[] as &[ComponentId]);
        assert_eq!(idx.kth_largest_size(1), 0);
    }

    #[test]
    fn from_run_validates_against_the_graph() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let good = reference_components(&g);
        let idx = ComponentIndex::from_run(&g, &good).expect("valid labeling");
        assert_eq!(idx.num_components(), 2);
        // Merging the two true components must be rejected.
        assert!(ComponentIndex::from_run(&g, &Labeling(vec![1; 6])).is_err());
        // Wrong length must be rejected.
        assert!(ComponentIndex::from_run(&g, &Labeling(vec![1, 1, 1])).is_err());
    }

    #[test]
    fn matches_reference_on_a_real_graph() {
        let g = Graph::from_edges(9, &[(0, 3), (3, 6), (1, 4), (2, 5), (5, 8), (8, 2)]);
        let truth = reference_components(&g);
        let idx = ComponentIndex::build(&truth);
        for u in 0..9u32 {
            for v in 0..9u32 {
                assert_eq!(idx.connected(u, v), truth.get(u) == truth.get(v), "({u},{v})");
            }
            assert_eq!(idx.component_size(u), truth.component_sizes()[&truth.get(u)]);
        }
        assert!(idx.heap_bytes() > 0);
    }

    #[test]
    fn clones_are_deep_and_equal() {
        let idx = index_of(&[4, 4, 9, 9, 9, 1]);
        let copy = idx.clone();
        assert_eq!(idx, copy);
        assert!(!copy.is_snapshot_backed());
        drop(idx);
        // The clone owns its arrays — still answers after the original dies.
        assert_eq!(copy.component_of(5), 2);
        assert_eq!(copy.members(1), &[2, 3, 4]);
    }

    #[test]
    fn interner_survives_adversarial_labels() {
        // Labels crafted to collide in the low bits: the mix must spread
        // them, and ids must still follow first-appearance order.
        let labels: Vec<u64> = (0..64u64).map(|i| i << 32).collect();
        let idx = ComponentIndex::build(&Labeling(labels));
        assert_eq!(idx.num_components(), 64);
        for v in 0..64u32 {
            assert_eq!(idx.component_of(v), v, "vertex {v} must open component {v}");
        }
        // Extreme values intern cleanly too.
        let idx = index_of(&[u64::MAX, 0, u64::MAX, 0, 1]);
        assert_eq!(idx.num_components(), 3);
        assert_eq!(idx.component_of(2), 0);
        assert_eq!(idx.component_of(3), 1);
    }
}
