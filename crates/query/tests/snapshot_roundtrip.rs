//! Snapshot persistence round-trip and corruption matrix.
//!
//! Two halves, mirroring the format's trust model:
//!
//! * **Round-trip matrix** — across the generator families, an index
//!   encoded to a snapshot and decoded back must be byte-identical to the
//!   original under every standard workload mix: same answers, same
//!   rankings, same labeling. The decoded index must really be
//!   zero-copy (`is_snapshot_backed`), not a rebuilt copy.
//! * **Corruption matrix** — deterministic damage at every structural
//!   position: a bit-flip inside each section must name *that* section's
//!   checksum; truncation at every section boundary must be `Truncated`;
//!   and semantically-invalid files that have been re-signed with correct
//!   checksums (a buggy or hostile writer) must still be rejected with a
//!   typed `Malformed` error — never a panic, never out-of-bounds.

use ampc_graph::generators::{
    barbell, caterpillar, disjoint_cliques, erdos_renyi_gnm, grid2d, path, random_forest, star,
};
use ampc_graph::{reference_components, Graph, Labeling};
use ampc_query::snapshot::{
    self, checksum, section_table, SectionInfo, SnapshotError, HEADER_CHECKSUM_OFFSET, HEADER_LEN,
};
use ampc_query::{workload, ComponentIndex, QueryEngine};

/// The generator families of the round-trip matrix, with the pipeline
/// algorithm tag a real run over that family would carry (1 = forest,
/// 2 = general).
fn families() -> Vec<(&'static str, Graph, u8)> {
    vec![
        ("path", path(257), 1),
        ("star", star(300), 1),
        ("caterpillar", caterpillar(40, 6), 1),
        ("random_forest", random_forest(1200, 17, 42), 1),
        ("erdos_renyi_gnm", erdos_renyi_gnm(1000, 1400, 7), 2),
        ("grid2d", grid2d(24, 31), 2),
        ("disjoint_cliques", disjoint_cliques(23, 11), 2),
        ("barbell", barbell(50, 9), 2),
    ]
}

/// All answers of `index` (optionally through a journal-free engine) to a
/// mix's generated stream — the byte-identity fingerprint.
fn answers(index: &ComponentIndex, queries: &[ampc_query::Query]) -> Vec<u64> {
    let engine = QueryEngine::new(index);
    queries.iter().map(|&q| engine.answer(q)).collect()
}

#[test]
fn roundtrip_matrix_preserves_every_answer() {
    for (name, g, algorithm) in families() {
        let labeling = reference_components(&g);
        let index = ComponentIndex::build(&labeling);
        let bytes = snapshot::encode(&index, &labeling, g.n() as u64, g.m() as u64, algorithm);
        let snap = snapshot::decode(&bytes).unwrap_or_else(|e| panic!("{name}: decode: {e}"));

        assert!(snap.index.is_snapshot_backed(), "{name}: decode must be zero-copy");
        assert!(!index.is_snapshot_backed(), "{name}: built index must own its arrays");
        assert_eq!(snap.index, index, "{name}: index mismatch after roundtrip");
        assert_eq!(snap.labeling, labeling, "{name}: labeling mismatch after roundtrip");
        assert_eq!((snap.graph_n, snap.graph_m), (g.n() as u64, g.m() as u64), "{name}");
        assert_eq!(snap.algorithm, algorithm, "{name}");

        for mix in workload::Mix::STANDARD {
            let queries = workload::generate(&index, mix, 2000, 0xC0FFEE);
            assert_eq!(
                answers(&index, &queries),
                answers(&snap.index, &queries),
                "{name}/{}: booted index answers diverge",
                mix.name()
            );
        }
        let c = index.num_components();
        assert_eq!(snap.index.top_k(c + 2), index.top_k(c + 2), "{name}: top-k mismatch");
    }
}

#[test]
fn disk_roundtrip_per_algorithm_tag() {
    let dir = std::env::temp_dir();
    for (name, g, algorithm) in
        [("forest", random_forest(900, 9, 3), 1u8), ("general", erdos_renyi_gnm(900, 1100, 3), 2)]
    {
        let labeling = reference_components(&g);
        let index = ComponentIndex::build(&labeling);
        let path = dir.join(format!("ampc_rt_{name}_{}.snap", std::process::id()));
        let written =
            snapshot::persist(&path, &index, &labeling, g.n() as u64, g.m() as u64, algorithm)
                .unwrap_or_else(|e| panic!("{name}: persist: {e}"));
        let snap = snapshot::load(&path).unwrap_or_else(|e| panic!("{name}: load: {e}"));
        assert_eq!(snap.file_bytes as u64, written, "{name}: size mismatch");
        assert_eq!(snap.index, index, "{name}");
        assert_eq!(snap.algorithm, algorithm, "{name}");
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn empty_and_singleton_graphs_roundtrip() {
    for n in [0usize, 1] {
        let g = Graph::empty(n);
        let labeling = reference_components(&g);
        let index = ComponentIndex::build(&labeling);
        let bytes = snapshot::encode(&index, &labeling, n as u64, 0, 1);
        let snap = snapshot::decode(&bytes).expect("tiny roundtrip");
        assert_eq!(snap.index.num_vertices(), n);
        assert_eq!(snap.index.num_components(), n);
    }
}

/// A mid-sized snapshot with several components — the corruption-matrix
/// subject (big enough that every section is non-empty and multi-word).
fn subject() -> Vec<u8> {
    let g = disjoint_cliques(12, 25);
    let labeling = reference_components(&g);
    let index = ComponentIndex::build(&labeling);
    snapshot::encode(&index, &labeling, g.n() as u64, g.m() as u64, 2)
}

#[test]
fn bit_flips_anywhere_in_a_section_name_that_section() {
    let good = subject();
    let table = section_table(&good).expect("good table");
    for s in table {
        assert!(s.byte_len > 0, "{}: corruption subject has an empty section", s.name);
        // First, middle, and last byte of the payload.
        for pos in [s.byte_off, s.byte_off + s.byte_len / 2, s.byte_off + s.byte_len - 1] {
            let mut bad = good.clone();
            bad[pos] ^= 0x10;
            match snapshot::decode(&bad) {
                Err(SnapshotError::ChecksumMismatch { section }) => assert_eq!(
                    section, s.name,
                    "flip at byte {pos} blamed `{section}`, expected `{}`",
                    s.name
                ),
                other => panic!(
                    "flip at byte {pos} in `{}` gave {:?}, expected ChecksumMismatch",
                    s.name,
                    other.err().map(|e| e.to_string())
                ),
            }
        }
    }
}

#[test]
fn truncation_at_every_boundary_is_reported_as_truncated() {
    let good = subject();
    let table = section_table(&good).expect("good table");
    // Below the fixed header; at the header edge; at every section start;
    // one byte short of the full file.
    let mut cuts = vec![0, 1, HEADER_LEN - 1, HEADER_LEN, good.len() - 1];
    cuts.extend(table.iter().map(|s| s.byte_off));
    cuts.extend(table.iter().map(|s| s.byte_off + s.byte_len / 2));
    for cut in cuts {
        match snapshot::decode(&good[..cut]) {
            Err(SnapshotError::Truncated { need, have }) => {
                assert_eq!(have, cut, "reported size must be the truncated size");
                assert!(need > have, "need {need} must exceed have {have}");
            }
            other => panic!(
                "truncation to {cut} bytes gave {:?}, expected Truncated",
                other.err().map(|e| e.to_string())
            ),
        }
    }
}

/// Overwrites a section's recorded checksum and the header checksum so a
/// tampered file is self-consistent again — only semantic validation can
/// reject it.
fn resign(bytes: &mut [u8], s: &SectionInfo) {
    let digest = checksum(&bytes[s.byte_off..s.byte_off + s.byte_len]);
    bytes[s.checksum_slot..s.checksum_slot + 8].copy_from_slice(&digest.to_le_bytes());
    let h = checksum(&bytes[..HEADER_CHECKSUM_OFFSET]);
    bytes[HEADER_CHECKSUM_OFFSET..HEADER_LEN].copy_from_slice(&h.to_le_bytes());
}

#[test]
fn resigned_semantic_corruption_in_every_section_is_rejected() {
    let good = subject();
    let table = section_table(&good).expect("good table");
    let [comp_of_s, offsets_s, members_s, by_size_s, labeling_s] = table;

    // comp_of: vertex 0 must open dense id 0; claiming id 1 breaks
    // first-appearance canonical form.
    let mut bad = good.clone();
    bad[comp_of_s.byte_off..comp_of_s.byte_off + 4].copy_from_slice(&1u32.to_le_bytes());
    resign(&mut bad, &comp_of_s);
    assert!(
        matches!(snapshot::decode(&bad), Err(SnapshotError::Malformed { section: "comp_of", .. })),
        "non-canonical comp_of must be rejected"
    );

    // comp_of: an id ≥ c is out of range even if the file is signed.
    let mut bad = good.clone();
    bad[comp_of_s.byte_off..comp_of_s.byte_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    resign(&mut bad, &comp_of_s);
    assert!(
        matches!(snapshot::decode(&bad), Err(SnapshotError::Malformed { section: "comp_of", .. })),
        "out-of-range comp_of id must be rejected"
    );

    // offsets: the final fence must equal n.
    let mut bad = good.clone();
    let last = offsets_s.byte_off + offsets_s.byte_len - 8;
    let n = u64::from_le_bytes(bad[last..last + 8].try_into().unwrap());
    bad[last..last + 8].copy_from_slice(&(n + 8).to_le_bytes());
    resign(&mut bad, &offsets_s);
    assert!(
        matches!(snapshot::decode(&bad), Err(SnapshotError::Malformed { section: "offsets", .. })),
        "offsets[c] != n must be rejected"
    );

    // offsets: a descending pair is non-monotone.
    let mut bad = good.clone();
    bad[offsets_s.byte_off + 8..offsets_s.byte_off + 16].copy_from_slice(&u64::MAX.to_le_bytes());
    resign(&mut bad, &offsets_s);
    assert!(
        matches!(snapshot::decode(&bad), Err(SnapshotError::Malformed { section: "offsets", .. })),
        "non-monotone offsets must be rejected"
    );

    // members: a vertex id ≥ n cannot appear in any member list.
    let mut bad = good.clone();
    bad[members_s.byte_off..members_s.byte_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    resign(&mut bad, &members_s);
    assert!(
        matches!(snapshot::decode(&bad), Err(SnapshotError::Malformed { section: "members", .. })),
        "out-of-range member must be rejected"
    );

    // by_size: a repeated rank entry is not a permutation.
    let mut bad = good.clone();
    let first = bad[by_size_s.byte_off..by_size_s.byte_off + 4].to_vec();
    bad[by_size_s.byte_off + 4..by_size_s.byte_off + 8].copy_from_slice(&first);
    resign(&mut bad, &by_size_s);
    assert!(
        matches!(snapshot::decode(&bad), Err(SnapshotError::Malformed { section: "by_size", .. })),
        "repeated by_size entry must be rejected"
    );

    // labeling: a vertex whose label disagrees with its component's class
    // (vertex 1 shares clique 0 with vertex 0 in the subject graph).
    let mut bad = good.clone();
    bad[labeling_s.byte_off + 8..labeling_s.byte_off + 16]
        .copy_from_slice(&0xDEAD_BEEF_u64.to_le_bytes());
    resign(&mut bad, &labeling_s);
    assert!(
        matches!(snapshot::decode(&bad), Err(SnapshotError::Malformed { section: "labeling", .. })),
        "label/partition disagreement must be rejected"
    );
}

#[test]
fn writer_refuses_inconsistent_images() {
    let g = path(10);
    let labeling = reference_components(&g);
    let index = ComponentIndex::build(&labeling);
    // Wrong vertex count and wrong algorithm tag both panic the writer —
    // it never signs an inconsistent file.
    for result in [
        std::panic::catch_unwind(|| snapshot::encode(&index, &labeling, 11, 9, 2)),
        std::panic::catch_unwind(|| snapshot::encode(&index, &labeling, 10, 9, 3)),
        std::panic::catch_unwind(|| {
            let short = Labeling(vec![0; 9]);
            snapshot::encode(&index, &short, 10, 9, 2)
        }),
    ] {
        assert!(result.is_err(), "writer must refuse an inconsistent image");
    }
}
