//! The ten experiments of the per-experiment index in DESIGN.md.
//!
//! Each function is deterministic given its arguments, validates all
//! computed labelings against sequential ground truth, and returns a
//! [`Table`] pairing paper bounds with measured values. `quick` shrinks the
//! input sizes (used by integration tests and Criterion).

use ampc::{AmpcConfig, DhtBackend};
use ampc_cc::baselines::mpc_label_prop::{exponentiated_propagation, min_label_propagation};
use ampc_cc::cycles::CycleState;
use ampc_cc::forest::pipeline::{connected_components_forest, ForestCcConfig};
use ampc_cc::forest::ranks::{pi_b, sample_rank};
use ampc_cc::forest::shrink_small::shrink_small_cycles;
use ampc_cc::general::algorithm2::{connected_components_general, GeneralCcConfig};
use ampc_cc::general::bdeplus::theorem41;
use ampc_cc::general::sampling::{algorithm2_sample_probability, crossing_edges, sample_edges};
use ampc_cc::general::shrink_general::shrink_general;
use ampc_cc::{log_iter, log_star};
use ampc_graph::generators::{erdos_renyi_gnm, grid2d, path, random_forest, ForestFamily};
use ampc_graph::{reference_components, Graph};

use crate::table::{big, f2, Table};

fn assert_correct(g: &Graph, labeling: &ampc_graph::Labeling, what: &str) {
    assert!(
        labeling.same_partition(&reference_components(g)),
        "{what}: labeling does not match ground truth (n={}, m={})",
        g.n(),
        g.m()
    );
}

/// Builds a cycle-collection state of one big ring (the post-Euler shape of
/// a path forest), for the ShrinkSmallCycles micro-experiments.
fn ring_state(n: usize, seed: u64) -> CycleState {
    let succ: Vec<u64> = (0..n as u64).map(|i| (i + 1) % n as u64).collect();
    CycleState::from_successors(&succ, AmpcConfig::default().with_machines(8).with_seed(seed))
}

/// E1 — Theorem 1.1: forest connectivity in `O(log* n)` rounds, `O(n)`
/// total space. Run under all three storage backends — every counted
/// quantity must be backend-independent (the backend only changes merge
/// parallelism and read latency), so grouped rows differ in the `backend`
/// column alone.
pub fn e1_forest_rounds(quick: bool) -> Table {
    let mut t = Table::new(
        "E1 — forest rounds and space vs n (Theorem 1.1)",
        "O(log* n) AMPC rounds w.h.p. and optimal (linear) total space; identical under flat, sharded, and dense DHT backends",
        &["family", "n", "backend", "log*n", "iters", "rounds", "queries/n", "peak words/n"],
    );
    let sizes: &[usize] =
        if quick { &[1 << 12, 1 << 14] } else { &[1 << 12, 1 << 14, 1 << 16, 1 << 18] };
    let families = [
        ForestFamily::TinyTrees,
        ForestFamily::ManyTrees,
        ForestFamily::RandomTree,
        ForestFamily::Path,
    ];
    for fam in families {
        for &n in sizes {
            let g = fam.generate(n, 0xE1);
            let mut rows = Vec::new();
            for backend in [DhtBackend::Flat, DhtBackend::sharded(), DhtBackend::dense()] {
                let cfg = ForestCcConfig::default().with_seed(0xE1).with_backend(backend);
                let res = connected_components_forest(&g, &cfg).expect("forest cc");
                assert_correct(&g, &res.labeling, "E1");
                rows.push((res.iterations.len(), res.rounds(), res.queries(), res.peak_space()));
                t.push(vec![
                    fam.name().into(),
                    big(n),
                    backend.name().into(),
                    log_star(n as f64).to_string(),
                    res.iterations.len().to_string(),
                    res.rounds().to_string(),
                    f2(res.queries() as f64 / n as f64),
                    f2(res.peak_space() as f64 / n as f64),
                ]);
            }
            assert_eq!(rows[0], rows[1], "E1: backends disagreed on counted quantities");
            assert_eq!(rows[0], rows[2], "E1: dense backend disagreed on counted quantities");
        }
    }
    t
}

/// E2 — Theorem 1.1 trade-off: `O(k)` rounds with `O(n·log^(k) n)` space.
pub fn e2_forest_tradeoff(quick: bool) -> Table {
    let mut t = Table::new(
        "E2 — rounds vs space trade-off (Theorem 1.1, general k)",
        "O(k) rounds with O(n·log^(k) n) total space, via B0 = 2↑↑(log* n − k)",
        &["k", "B0", "iters", "rounds", "iter1 q/n", "peak words/n", "log^(k) n (paper factor)"],
    );
    // Many medium trees, with the length-capping preprocessing disabled so
    // the main loop's B-schedule is isolated (single huge trees are fully
    // handled by the capping step, as the theory predicts — see
    // EXPERIMENTS.md notes). Tree sizes are chosen so the resulting cycles
    // (2s − 2 vertices) stay well inside the walk budget S = n^0.6.
    let (n, tree_size) = if quick { (1 << 13, 48) } else { (1 << 19, 1024) };
    let g = random_forest(n, (n / tree_size).max(2), 0xE2);
    for k in 1..=5u32 {
        let mut cfg = ForestCcConfig::default().with_seed(0xE2).with_tradeoff_k(n, k);
        cfg.skip_shrink_large = true;
        let res = connected_components_forest(&g, &cfg).expect("forest cc");
        assert_correct(&g, &res.labeling, "E2");
        let iter1_q = res.iterations.first().map(|i| i.queries).unwrap_or(0);
        t.push(vec![
            k.to_string(),
            cfg.b0.to_string(),
            res.iterations.len().to_string(),
            res.rounds().to_string(),
            f2(iter1_q as f64 / n as f64),
            f2(res.peak_space() as f64 / n as f64),
            f2(log_iter(n as f64, k)),
        ]);
    }
    t
}

/// E3 — Lemmas 3.6/3.7: probe queries are ≤ 4B per vertex in expectation,
/// `O(n'·B)` globally w.h.p.
pub fn e3_query_complexity(quick: bool) -> Table {
    let mut t = Table::new(
        "E3 — ShrinkSmallCycles query complexity vs B (Lemmas 3.6, 3.7)",
        "Step-1 probe: ≤ 4B expected queries per vertex; O(n'·B) total w.h.p.",
        &["B", "probe q/vertex", "4B bound", "iter q/vertex", "iter q/(n'·B)"],
    );
    let n = if quick { 1 << 13 } else { 1 << 16 };
    for b in [2u16, 4, 6, 8, 10] {
        let mut st = ring_state(n, 0xE3 + b as u64);
        let out = shrink_small_cycles(&mut st, b, n, true).expect("iteration");
        let probe = st
            .sys
            .stats()
            .per_round()
            .iter()
            .find(|r| r.name == "ssc-probe")
            .expect("probe round recorded");
        let probe_per_vertex = probe.reads as f64 / n as f64;
        t.push(vec![
            b.to_string(),
            f2(probe_per_vertex),
            (4 * b).to_string(),
            f2(out.queries as f64 / n as f64),
            f2(out.queries as f64 / (n as f64 * b as f64)),
        ]);
        assert!(
            probe_per_vertex <= 4.0 * b as f64 + 4.0,
            "probe queries/vertex {probe_per_vertex} above 4B+slack for B={b}"
        );
    }
    t
}

/// E4 — Lemmas 3.10/3.12: one iteration drops the alive count to
/// `≤ 6n'/2^B` w.h.p.
pub fn e4_vertex_drop(quick: bool) -> Table {
    let mut t = Table::new(
        "E4 — vertex drop per iteration vs B (Lemmas 3.10, 3.12)",
        "After one iteration at most 6n'/2^B vertices survive w.h.p.",
        &["B", "n'", "alive after", "drop factor", "2^B", "6n'/2^B bound", "holds"],
    );
    let n = if quick { 1 << 13 } else { 1 << 16 };
    for b in [2u16, 3, 4, 6, 8] {
        let mut st = ring_state(n, 0xE4 + b as u64);
        let out = shrink_small_cycles(&mut st, b, n, true).expect("iteration");
        let bound = 6.0 * n as f64 / (1u64 << b) as f64;
        let holds = (out.alive_after as f64) <= bound;
        t.push(vec![
            b.to_string(),
            big(n),
            big(out.alive_after),
            f2(n as f64 / out.alive_after.max(1) as f64),
            (1u64 << b).to_string(),
            f2(bound),
            holds.to_string(),
        ]);
        assert!(holds, "Lemma 3.12 bound violated at B={b}: {} > {bound}", out.alive_after);
    }
    t
}

/// E5 — Theorem 1.2: general graphs in `2^O(k)` rounds with
/// `O(m + n·log^(k) n)` space per round.
pub fn e5_general_rounds(quick: bool) -> Table {
    let mut t = Table::new(
        "E5 — general-graph recursion vs k (Theorem 1.2, Lemma 4.6)",
        "2^O(k) ConnectedComponents calls; each round O(m + n·log^(k) n) space",
        &["k", "cc calls", "base calls", "depth", "rounds", "peak words", "T budget"],
    );
    let (n, m) = if quick { (1 << 11, 1 << 13) } else { (1 << 14, 1 << 17) };
    let g = erdos_renyi_gnm(n, m, 0xE5);
    for k in 1..=5u32 {
        // gamma = 0.75: at laptop scale T/n crosses any smaller n^gamma
        // after one level, hiding the depth the paper's asymptotics predict
        // (Lemma 4.8 climbs the log^(k) ladder level by level).
        let mut cfg = GeneralCcConfig::default().with_seed(0xE5).with_k(k);
        cfg.gamma = 0.75;
        // A unit space constant keeps 2^√(T/n) below √S for large k, so the
        // exploration budget t — and with it the recursion depth — actually
        // depends on k at these sizes.
        cfg.space_const = 1.0;
        let res = connected_components_general(&g, &cfg).expect("general cc");
        assert_correct(&g, &res.labeling, "E5");
        t.push(vec![
            k.to_string(),
            res.cc_calls.to_string(),
            res.base_case_calls.to_string(),
            res.max_depth_reached.to_string(),
            res.stats.rounds().to_string(),
            big(res.stats.peak_total_space()),
            big(res.total_space),
        ]);
    }
    t
}

/// E6 — Lemma 4.2 / Claim 4.11: `E|V(H)| = O(m/t)` and `O(m log t)` BFS
/// space.
pub fn e6_shrink_general(quick: bool) -> Table {
    let mut t = Table::new(
        "E6 — ShrinkGeneral scaling vs t (Lemma 4.2, Claim 4.11)",
        "E|V(H)| = O(m/t); BFS uses O(m log t) expected queries; P(root) = O(1/t)",
        &["t", "|V(H)|", "m/t", "|V(H)|/(m/t)", "bfs q", "m·log t", "q/(m·log t)", "root rate × t"],
    );
    let (n, m) = if quick { (1 << 11, 1 << 12) } else { (1 << 13, 1 << 14) };
    let g = erdos_renyi_gnm(n, m, 0xE6);
    for tpar in [2usize, 4, 8, 16, 32, 64] {
        let out = shrink_general(&g, tpar, 1 << 20, AmpcConfig::default().with_seed(0xE6))
            .expect("shrink");
        // CC-shrinking check: compose back through H.
        let h_labels = reference_components(&out.h);
        let g_labels = ampc_graph::Labeling(out.to_h.iter().map(|&c| h_labels.get(c)).collect());
        assert_correct(&g, &g_labels, "E6");
        let m3 = out.n3 as f64; // |E(G3)| = Θ(m); vertices of G3 ≈ 2m
        let mt = m3 / tpar as f64;
        let mlogt = m3 * (tpar.max(2) as f64).log2();
        t.push(vec![
            tpar.to_string(),
            big(out.h.n()),
            f2(mt),
            f2(out.h.n() as f64 / mt),
            big(out.bfs_queries),
            f2(mlogt),
            f2(out.bfs_queries as f64 / mlogt),
            f2(out.roots as f64 / out.n3 as f64 * tpar as f64),
        ]);
    }
    t
}

/// E7 — Theorem 4.3 / Corollary 4.4: KKT sampling bounds.
pub fn e7_kkt_sampling(quick: bool) -> Table {
    let mut t = Table::new(
        "E7 — KKT edge sampling (Theorem 4.3, Corollary 4.4)",
        "crossing edges ≤ n/p in expectation; with p = √(n/m) both |E(H)| and crossings are O(√(mn))",
        &["m", "p", "|E(H)|", "crossing", "n/p", "√(mn)", "crossing/(n/p)"],
    );
    let n = if quick { 1 << 11 } else { 1 << 13 };
    for factor in [2usize, 4, 8, 16, 32] {
        let m = n * factor;
        let g = erdos_renyi_gnm(n, m, 0xE7);
        let p = algorithm2_sample_probability(n, m);
        let h = sample_edges(&g, p, 0xE7);
        let crossing = crossing_edges(&g, &h);
        let n_over_p = n as f64 / p;
        let sqrt_mn = ((m * n) as f64).sqrt();
        t.push(vec![
            big(m),
            f2(p),
            big(h.m()),
            big(crossing),
            f2(n_over_p),
            f2(sqrt_mn),
            f2(crossing as f64 / n_over_p),
        ]);
        assert!(
            (crossing as f64) < 3.0 * n_over_p,
            "KKT bound violated: {crossing} crossings vs n/p = {n_over_p}"
        );
    }
    t
}

/// E8 — comparison: this paper's algorithms vs the Theorem 4.1 subroutine
/// vs classic MPC propagation.
pub fn e8_baseline_comparison(quick: bool) -> Table {
    let mut t = Table::new(
        "E8 — AMPC (this paper) vs baselines",
        "AMPC removes the MPC Θ(D)/Θ(log D) round dependence; optimal space vs the O(n log n) of prior AMPC work",
        &["workload", "algorithm", "rounds", "queries/messages", "peak words"],
    );
    let n = if quick { 1 << 11 } else { 1 << 14 };

    // Forest workload: a single path (diameter n — the MPC worst case).
    let g = path(n);
    let res = connected_components_forest(&g, &ForestCcConfig::default().with_seed(0xE8))
        .expect("forest");
    assert_correct(&g, &res.labeling, "E8 forest");
    t.push(vec![
        format!("path n={}", big(n)),
        "AMPC Alg.1 (Thm 1.1)".into(),
        res.rounds().to_string(),
        big(res.queries()),
        big(res.peak_space()),
    ]);
    let mpc = min_label_propagation(&g);
    assert_correct(&g, &mpc.labeling, "E8 mpc");
    t.push(vec![
        format!("path n={}", big(n)),
        "MPC min-label (Θ(D))".into(),
        mpc.rounds.to_string(),
        big(mpc.total_messages),
        "-".into(),
    ]);
    let dbl = exponentiated_propagation(&g);
    assert_correct(&g, &dbl.labeling, "E8 doubling");
    t.push(vec![
        format!("path n={}", big(n)),
        "MPC doubling (Θ(log n))".into(),
        dbl.rounds.to_string(),
        big(dbl.total_messages),
        "-".into(),
    ]);

    // General workload: a grid (large diameter, m ≈ 2n).
    let side = (n as f64).sqrt() as usize;
    let g = grid2d(side, side);
    let res = connected_components_general(&g, &GeneralCcConfig::default().with_seed(0xE8))
        .expect("general");
    assert_correct(&g, &res.labeling, "E8 grid alg2");
    t.push(vec![
        format!("grid {side}x{side}"),
        "AMPC Alg.2 (Thm 1.2)".into(),
        res.stats.rounds().to_string(),
        big(res.stats.total_queries()),
        big(res.stats.peak_total_space()),
    ]);
    let t_total = 8 * (g.n() + g.m());
    let s_local = ((g.n() + g.m()) as f64).powf(0.6) as usize;
    let b41 =
        theorem41(&g, t_total, s_local, &AmpcConfig::default().with_seed(0xE8)).expect("thm41");
    assert_correct(&g, &b41.labeling, "E8 grid thm41");
    t.push(vec![
        format!("grid {side}x{side}"),
        "BDE+21 Thm 4.1 (T=8N)".into(),
        b41.stats.rounds().to_string(),
        big(b41.stats.total_queries()),
        big(b41.stats.peak_total_space()),
    ]);
    let mpc = min_label_propagation(&g);
    t.push(vec![
        format!("grid {side}x{side}"),
        "MPC min-label (Θ(D))".into(),
        mpc.rounds.to_string(),
        big(mpc.total_messages),
        "-".into(),
    ]);
    t
}

/// E9 — design ablations: Step 2 on/off and B-doubling on/off.
pub fn e9_ablations(quick: bool) -> Table {
    let mut t = Table::new(
        "E9 — ablations of Algorithm 1's design choices",
        "Step 2 defeats the additive 2^B term on short cycles (Lemma 3.10); doubling B gives the log* schedule",
        &["workload", "variant", "iters", "rounds", "queries/n"],
    );
    let n = if quick { 1 << 11 } else { 1 << 14 };

    // Tiny trees → tiny cycles: the regime where Step 1 alone stalls.
    let tiny = ForestFamily::TinyTrees.generate(n, 0xE9);
    // Medium trees with the capping step disabled: the regime where the
    // B-schedule drives iteration count (B starts at 2 here, so a fixed
    // schedule needs visibly more iterations than a doubling one). Tree
    // sizes keep the Euler cycles inside the walk budget S = n^0.6.
    let medium_tree = if quick { 48 } else { 300 };
    let medium = random_forest(n, (n / medium_tree).max(2), 0xE9);

    for (wname, g) in [("tiny-trees", &tiny), ("medium-trees", &medium)] {
        for (vname, step2, double_b) in
            [("full", true, true), ("no-step2", false, true), ("fixed-B", true, false)]
        {
            let mut cfg = ForestCcConfig::default().with_seed(0xE9);
            cfg.enable_step2 = step2;
            cfg.double_b = double_b;
            if wname == "medium-trees" {
                cfg.skip_shrink_large = true;
                // Start from the minimal budget so the doubling schedule is
                // load-bearing: with fixed B = 1, Step 2's 8B-per-cycle
                // removal is the only progress on medium cycles.
                cfg.b0 = 1;
                cfg.max_iterations = 128;
            }
            let res = connected_components_forest(g, &cfg).expect("forest");
            assert_correct(g, &res.labeling, "E9");
            t.push(vec![
                wname.into(),
                vname.into(),
                res.iterations.len().to_string(),
                res.rounds().to_string(),
                f2(res.queries() as f64 / g.n() as f64),
            ]);
        }
    }
    t
}

/// E10 — Claims 3.4/3.11: the rank distribution and its coin-game law.
pub fn e10_rank_distribution(quick: bool) -> Table {
    let mut t = Table::new(
        "E10 — rank distribution π_B (Claims 3.4, 3.11)",
        "π_B(i) = C_B/2^i; empirical frequencies of both samplers match",
        &["i", "π_B(i)", "inversion freq", "coin-game freq"],
    );
    let b = 6u16;
    let trials = if quick { 40_000 } else { 400_000 };
    let mut inv = vec![0usize; b as usize + 1];
    let mut game = vec![0usize; b as usize + 1];
    let mut r1 = ampc::rng::stream(0xE10, 1, 0, 0);
    let mut r2 = ampc::rng::stream(0xE10, 2, 0, 0);
    for _ in 0..trials {
        inv[sample_rank(&mut r1, b) as usize] += 1;
        game[ampc_cc::forest::ranks::sample_rank_coin_game(&mut r2, b) as usize] += 1;
    }
    for i in 1..=b {
        let p = pi_b(i, b);
        let fi = inv[i as usize] as f64 / trials as f64;
        let fg = game[i as usize] as f64 / trials as f64;
        t.push(vec![i.to_string(), format!("{p:.4}"), format!("{fi:.4}"), format!("{fg:.4}")]);
        assert!((fi - p).abs() < 0.02 && (fg - p).abs() < 0.02, "distribution mismatch at {i}");
    }
    t
}

/// E11 — Claim 4.12: rooted-forest resolution, the paper's Euler-tour
/// construction vs the adaptive-chasing substitute, across forest depths.
pub fn e11_rooted_forest(quick: bool) -> Table {
    use ampc_cc::general::rooted_forest::{resolve_roots_chase, resolve_roots_euler};
    use ampc_graph::VertexId;

    let mut t = Table::new(
        "E11 — rooted-forest resolution (Claim 4.12) vs parent-forest depth",
        "The Euler-tour sweep is one round at any depth; capped chasing pays rounds proportional to depth/S",
        &["forest", "depth", "euler rounds", "euler queries", "chase rounds", "chase queries"],
    );
    let n = if quick { 1 << 11 } else { 1 << 13 };
    let cap = 256; // deliberately small chase budget to expose the depth dependence

    // Three parent forests: shallow random, mid (path-of-blocks), deep chain.
    let shallow: Vec<Option<VertexId>> = {
        let mut rng = ampc::rng::stream(0xE11, 0, 0, 0);
        (0..n)
            .map(|v| if v < 8 { None } else { Some(rng.next_below(v as u64) as VertexId) })
            .collect()
    };
    let mid: Vec<Option<VertexId>> = (0..n)
        .map(|v| if v == 0 { None } else { Some((v - 1 - (v - 1) % 2) as VertexId) })
        .collect(); // depth ≈ n/2
    let deep: Vec<Option<VertexId>> =
        (0..n).map(|v| if v == 0 { None } else { Some(v as VertexId - 1) }).collect();

    for (name, parents) in [("random", &shallow), ("paired-chain", &mid), ("chain", &deep)] {
        let depth = {
            // host-side measurement for the report
            let mut max_d = 0usize;
            for start in 0..parents.len() {
                let mut v = start;
                let mut d = 0;
                while let Some(p) = parents[v] {
                    v = p as usize;
                    d += 1;
                }
                max_d = max_d.max(d);
            }
            max_d
        };
        let cfg = AmpcConfig::default().with_seed(0xE11);
        let euler = resolve_roots_euler(parents, 4096, cfg.clone()).expect("euler");
        let chase = resolve_roots_chase(parents, cap, cfg).expect("chase");
        assert_eq!(euler.labels, chase.labels, "{name}: resolutions disagree");
        t.push(vec![
            name.into(),
            depth.to_string(),
            euler.traversal_rounds.to_string(),
            big(euler.stats.total_queries()),
            chase.traversal_rounds.to_string(),
            big(chase.stats.total_queries()),
        ]);
    }
    t
}

/// E12 — storage backends: the sharded and dense snapshot stores must be
/// observably identical to the flat reference while parallelizing the
/// round-finish merge (and, for dense, removing hashing from the adaptive
/// read path — see `crates/ampc/src/dht.rs` for the equivalence argument).
pub fn e12_storage_backends(quick: bool) -> Table {
    use std::time::Instant;
    let mut t = Table::new(
        "E12 — DHT storage backends (flat vs sharded vs dense)",
        "Backends are observably identical (labels, rounds, queries, peak space); they only change merge parallelism and read latency",
        &["workload", "backend", "shards", "rounds", "queries", "peak words", "wall ms"],
    );
    let n = if quick { 1 << 12 } else { 1 << 15 };
    let forest = random_forest(n, (n / 64).max(2), 0xE12);
    let general = erdos_renyi_gnm(n / 2, n, 0xE12);

    let mut forest_rows: Vec<(usize, usize, usize)> = Vec::new();
    let mut general_rows: Vec<(usize, usize, usize)> = Vec::new();
    for backend in [DhtBackend::Flat, DhtBackend::sharded(), DhtBackend::dense()] {
        let shards = backend.resolved_shards();

        let start = Instant::now();
        let cfg = ForestCcConfig::default().with_seed(0xE12).with_backend(backend);
        let res = connected_components_forest(&forest, &cfg).expect("forest cc");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_correct(&forest, &res.labeling, "E12 forest");
        forest_rows.push((res.rounds(), res.queries(), res.peak_space()));
        t.push(vec![
            format!("forest n={}", big(n)),
            backend.name().into(),
            shards.to_string(),
            res.rounds().to_string(),
            big(res.queries()),
            big(res.peak_space()),
            f2(ms),
        ]);

        let start = Instant::now();
        let cfg = GeneralCcConfig::default().with_seed(0xE12).with_backend(backend);
        let res = connected_components_general(&general, &cfg).expect("general cc");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_correct(&general, &res.labeling, "E12 general");
        general_rows.push((
            res.stats.rounds(),
            res.stats.total_queries(),
            res.stats.peak_total_space(),
        ));
        t.push(vec![
            format!("general n={}", big(n / 2)),
            backend.name().into(),
            shards.to_string(),
            res.stats.rounds().to_string(),
            big(res.stats.total_queries()),
            big(res.stats.peak_total_space()),
            f2(ms),
        ]);
    }
    assert_eq!(forest_rows[0], forest_rows[1], "E12: forest backends diverged");
    assert_eq!(general_rows[0], general_rows[1], "E12: general backends diverged");
    assert_eq!(forest_rows[0], forest_rows[2], "E12: dense forest backend diverged");
    assert_eq!(general_rows[0], general_rows[2], "E12: dense general backend diverged");
    t
}

/// Runs every experiment, returning all tables in index order.
pub fn run_all(quick: bool) -> Vec<Table> {
    (1..=12).map(|i| run_one(&format!("e{i}"), quick).expect("known id")).collect()
}

/// Runs one experiment by id (`"e1"`–`"e12"`).
pub fn run_one(id: &str, quick: bool) -> Option<Table> {
    Some(match id {
        "e1" => e1_forest_rounds(quick),
        "e2" => e2_forest_tradeoff(quick),
        "e3" => e3_query_complexity(quick),
        "e4" => e4_vertex_drop(quick),
        "e5" => e5_general_rounds(quick),
        "e6" => e6_shrink_general(quick),
        "e7" => e7_kkt_sampling(quick),
        "e8" => e8_baseline_comparison(quick),
        "e9" => e9_ablations(quick),
        "e10" => e10_rank_distribution(quick),
        "e11" => e11_rooted_forest(quick),
        "e12" => e12_storage_backends(quick),
        _ => return None,
    })
}
