//! CLI harness: regenerate the paper's quantitative claims.
//!
//! ```text
//! cargo run -p ampc-bench --release --bin experiments -- all
//! cargo run -p ampc-bench --release --bin experiments -- e1 e4
//! cargo run -p ampc-bench --release --bin experiments -- --quick all
//! ```

use std::time::Instant;

/// Prints the per-round cost ledger of one Algorithm 1 run — every AMPC
/// round by name with its reads, communication, and total-space charge.
fn trace() {
    use ampc_cc::forest::pipeline::{connected_components_forest, ForestCcConfig};
    let n = 1 << 14;
    let g = ampc_graph::generators::random_forest(n, n / 48, 0xBEEF);
    let mut cfg = ForestCcConfig::default().with_seed(0xBEEF);
    cfg.skip_shrink_large = true;
    let res = connected_components_forest(&g, &cfg).expect("forest run");
    println!("# Round-by-round trace — Algorithm 1 on a {n}-vertex forest\n");
    println!("{}", res.stats.round_table());
    println!(
        "total: {} rounds, {} queries, peak space {} words",
        res.rounds(),
        res.queries(),
        res.peak_space()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    // --csv DIR: additionally write each table as DIR/eN.csv.
    let csv_dir: Option<String> =
        args.iter().position(|a| a == "--csv").and_then(|i| args.get(i + 1).cloned());
    if args.iter().any(|a| a == "trace") {
        trace();
        return;
    }
    let csv_value_idx = args.iter().position(|a| a == "--csv").map(|i| i + 1);
    let ids: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with('-') && Some(*i) != csv_value_idx)
        .map(|(_, a)| a.as_str())
        .collect();

    let selected: Vec<String> = if ids.is_empty() || ids.contains(&"all") {
        (1..=12).map(|i| format!("e{i}")).collect()
    } else {
        ids.iter().map(|s| s.to_lowercase()).collect()
    };

    println!("# Experiment results — Adaptive Massively Parallel Connectivity in Optimal Space\n");
    println!(
        "Mode: {} | seed-deterministic | labels validated against sequential ground truth\n",
        if quick { "quick" } else { "full" }
    );

    for id in &selected {
        let start = Instant::now();
        match ampc_bench::run_one(id, quick) {
            Some(table) => {
                println!("{table}");
                println!("_({id} completed in {:.1?})_\n", start.elapsed());
                if let Some(dir) = &csv_dir {
                    std::fs::create_dir_all(dir).expect("create csv dir");
                    let path = std::path::Path::new(dir).join(format!("{id}.csv"));
                    std::fs::write(&path, table.to_csv()).expect("write csv");
                }
            }
            None => eprintln!("unknown experiment id: {id} (expected e1..e12 or all)"),
        }
    }
}
