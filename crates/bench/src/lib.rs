//! # `ampc-bench` — experiment harness
//!
//! Regenerates every quantitative claim of the paper (the "tables and
//! figures" of this theory paper — see DESIGN.md's per-experiment index).
//! Each `eN_*` function runs one experiment and returns a [`Table`] whose
//! rows pair the paper's bound with the measured value. The
//! `experiments` binary prints them; the Criterion benches in `benches/`
//! time the same code paths.
//!
//! Every experiment validates its labelings against sequential ground
//! truth and panics on a mismatch, so producing a table is also an
//! end-to-end correctness check.

pub mod experiments;
pub mod table;

pub use experiments::*;
pub use table::Table;
