//! Markdown table rendering for experiment output.

use std::fmt;

/// A titled markdown table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment title, e.g. `"E1 — forest rounds vs n (Theorem 1.1)"`.
    pub title: String,
    /// One-line description of the paper claim being reproduced.
    pub claim: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, claim: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            claim: claim.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table as CSV (for plotting pipelines). Numeric cells
    /// keep the `_` thousands separators stripped.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            let cleaned = if cell.chars().all(|c| c.is_ascii_digit() || c == '_' || c == '.') {
                cell.replace('_', "")
            } else {
                cell.to_string()
            };
            if cleaned.contains(',') || cleaned.contains('"') {
                format!("\"{}\"", cleaned.replace('"', "\"\""))
            } else {
                cleaned
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {}", self.title)?;
        writeln!(f)?;
        writeln!(f, "*{}*", self.claim)?;
        writeln!(f)?;
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| self.rows.iter().map(|r| r[i].len()).chain([h.len()]).max().unwrap_or(0))
            .collect();
        let line = |cells: &[String], f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "|")?;
            for (c, w) in cells.iter().zip(&widths) {
                write!(f, " {:<w$} |", c, w = w)?;
            }
            writeln!(f)
        };
        line(&self.header, f)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(row, f)?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a count with thousands separators.
pub fn big(x: usize) -> String {
    let s = x.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("T", "claim", &["a", "bb"]);
        t.push(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("### T"));
        assert!(s.contains("| a | bb |"));
        assert!(s.contains("| 1 | 2  |"));
    }

    #[test]
    fn big_inserts_separators() {
        assert_eq!(big(1_234_567), "1_234_567");
        assert_eq!(big(42), "42");
        assert_eq!(big(1000), "1_000");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("T", "c", &["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }
}
