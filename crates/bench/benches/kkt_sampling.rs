//! E7 bench — KKT edge sampling and crossing-edge counting (Theorem 4.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ampc_cc::general::sampling::{algorithm2_sample_probability, crossing_edges, sample_edges};
use ampc_graph::generators::erdos_renyi_gnm;

fn bench_kkt(c: &mut Criterion) {
    let mut group = c.benchmark_group("kkt_sampling");
    group.sample_size(10);
    let n = 1 << 11;
    for factor in [4usize, 16] {
        let m = n * factor;
        let g = erdos_renyi_gnm(n, m, 0xE7);
        let p = algorithm2_sample_probability(n, m);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::new("avg_degree", 2 * factor), &g, |b, g| {
            b.iter(|| {
                let h = sample_edges(g, p, 0xE7);
                crossing_edges(g, &h)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kkt);
criterion_main!(benches);
