//! E5 bench — Algorithm 2 end-to-end across `k` (Theorem 1.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ampc_cc::general::algorithm2::{connected_components_general, GeneralCcConfig};
use ampc_graph::generators::erdos_renyi_gnm;

fn bench_general_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("general_rounds");
    group.sample_size(10);
    let g = erdos_renyi_gnm(1 << 11, 1 << 13, 0xE5);
    for k in [1u32, 3, 5] {
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| {
                let cfg = GeneralCcConfig::default().with_seed(0xE5).with_k(k);
                let res = connected_components_general(&g, &cfg).expect("cc");
                (res.cc_calls, res.stats.rounds())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_general_rounds);
criterion_main!(benches);
