//! E6 bench — one `ShrinkGeneral(G, t)` application vs `t` (Lemma 4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ampc::AmpcConfig;
use ampc_cc::general::shrink_general::shrink_general;
use ampc_graph::generators::erdos_renyi_gnm;

fn bench_shrink_general(c: &mut Criterion) {
    let mut group = c.benchmark_group("shrink_general");
    group.sample_size(10);
    let g = erdos_renyi_gnm(1 << 11, 1 << 12, 0xE6);
    for t in [2usize, 8, 32] {
        group.throughput(Throughput::Elements(g.m() as u64));
        group.bench_with_input(BenchmarkId::new("t", t), &t, |b, &t| {
            b.iter(|| {
                let out = shrink_general(
                    &g,
                    t,
                    1 << 16,
                    AmpcConfig::default().with_machines(8).with_seed(0xE6),
                )
                .expect("shrink");
                (out.h.n(), out.bfs_queries)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shrink_general);
criterion_main!(benches);
