//! E10 bench — sampling `π_B` by CDF inversion vs the Claim 3.11 coin game.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ampc::rng::stream;
use ampc_cc::forest::ranks::{sample_rank, sample_rank_coin_game};

fn bench_ranks(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_distribution");
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    for b in [4u16, 8, 16] {
        group.bench_with_input(BenchmarkId::new("inversion/B", b), &b, |bench, &b| {
            let mut rng = stream(1, 0, 0, 0);
            bench.iter(|| (0..n).map(|_| sample_rank(&mut rng, b) as u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("coin_game/B", b), &b, |bench, &b| {
            let mut rng = stream(2, 0, 0, 0);
            bench.iter(|| (0..n).map(|_| sample_rank_coin_game(&mut rng, b) as u64).sum::<u64>())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ranks);
criterion_main!(benches);
