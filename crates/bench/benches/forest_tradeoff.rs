//! E2 bench — the Theorem 1.1 rounds/space trade-off across `k`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ampc_cc::forest::pipeline::{connected_components_forest, ForestCcConfig};
use ampc_graph::generators::random_forest;

fn bench_forest_tradeoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_tradeoff");
    group.sample_size(10);
    let n = 1 << 13;
    let g = random_forest(n, n / 48, 0xE2);
    for k in [1u32, 3, 5] {
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| {
                let mut cfg = ForestCcConfig::default().with_seed(0xE2).with_tradeoff_k(n, k);
                cfg.skip_shrink_large = true;
                connected_components_forest(&g, &cfg).expect("cc").rounds()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forest_tradeoff);
criterion_main!(benches);
