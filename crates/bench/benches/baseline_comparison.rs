//! E8 bench — this paper's algorithms vs the Theorem 4.1 subroutine vs MPC
//! label propagation on the same workloads.

use criterion::{criterion_group, criterion_main, Criterion};

use ampc::AmpcConfig;
use ampc_cc::baselines::mpc_label_prop::{exponentiated_propagation, min_label_propagation};
use ampc_cc::forest::pipeline::{connected_components_forest, ForestCcConfig};
use ampc_cc::general::algorithm2::{connected_components_general, GeneralCcConfig};
use ampc_cc::general::bdeplus::theorem41;
use ampc_graph::generators::{grid2d, path};

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_comparison");
    group.sample_size(10);

    let p = path(1 << 11);
    group.bench_function("path/ampc_alg1", |b| {
        b.iter(|| {
            connected_components_forest(&p, &ForestCcConfig::default().with_seed(1))
                .expect("cc")
                .rounds()
        })
    });
    group.bench_function("path/mpc_min_label", |b| b.iter(|| min_label_propagation(&p).rounds));
    group.bench_function("path/mpc_doubling", |b| b.iter(|| exponentiated_propagation(&p).rounds));

    let g = grid2d(40, 40);
    group.bench_function("grid/ampc_alg2", |b| {
        b.iter(|| {
            connected_components_general(&g, &GeneralCcConfig::default().with_seed(1))
                .expect("cc")
                .stats
                .rounds()
        })
    });
    group.bench_function("grid/bde21_thm41", |b| {
        b.iter(|| {
            theorem41(&g, 8 * (g.n() + g.m()), 1 << 10, &AmpcConfig::default().with_seed(1))
                .expect("cc")
                .stats
                .rounds()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
