//! E11 bench — Claim 4.12 rooted-forest resolution variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ampc::AmpcConfig;
use ampc_cc::general::rooted_forest::{resolve_roots_chase, resolve_roots_euler};
use ampc_graph::VertexId;

fn bench_rooted_forest(c: &mut Criterion) {
    let mut group = c.benchmark_group("rooted_forest");
    group.sample_size(10);
    let n = 1 << 12;
    // Deep chain: worst case for chasing, routine for the Euler sweep.
    let parents: Vec<Option<VertexId>> =
        (0..n).map(|v| if v == 0 { None } else { Some(v as VertexId - 1) }).collect();
    group.bench_with_input(BenchmarkId::new("variant", "euler"), &parents, |b, p| {
        b.iter(|| resolve_roots_euler(p, 1 << 13, AmpcConfig::default()).expect("euler").labels)
    });
    group.bench_with_input(BenchmarkId::new("variant", "chase"), &parents, |b, p| {
        b.iter(|| resolve_roots_chase(p, 256, AmpcConfig::default()).expect("chase").labels)
    });
    group.finish();
}

criterion_group!(benches, bench_rooted_forest);
criterion_main!(benches);
