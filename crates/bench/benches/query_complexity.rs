//! E3 bench — one `ShrinkSmallCycles` iteration vs rank width `B`
//! (Lemmas 3.6 and 3.7: queries scale with `B`, not with cycle length).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ampc::AmpcConfig;
use ampc_cc::cycles::CycleState;
use ampc_cc::forest::shrink_small::shrink_small_cycles;

fn ring(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| (i + 1) % n as u64).collect()
}

fn bench_query_complexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_complexity");
    group.sample_size(10);
    let n = 1 << 14;
    let succ = ring(n);
    for b in [2u16, 4, 8] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("B", b), &b, |bench, &b| {
            bench.iter(|| {
                let mut st: CycleState = CycleState::from_successors(
                    &succ,
                    AmpcConfig::default().with_machines(8).with_seed(0xE3),
                );
                shrink_small_cycles(&mut st, b, n, true).expect("iteration").queries
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_complexity);
criterion_main!(benches);
