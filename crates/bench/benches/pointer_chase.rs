//! Pointer-chase bench — adaptive read latency under all three backends.
//!
//! After PR 2 parallelized the round-finish merge, wall-clock time in the
//! paper's algorithms is dominated by *adaptive reads*: successor walks in
//! `ShrinkSmallCycles` and parent resolution in the rooted-forest phase
//! issue one DHT read per hop, and the value of each read chooses the next
//! key. This bench isolates exactly that instruction sequence: a
//! ShrinkSmallCycles-shaped successor walk over a ≥1M-vertex cycle, run on
//! a single machine with parallelism disabled so the number reported is
//! per-read latency, not multi-core throughput.
//!
//! Two walk patterns are timed:
//!
//! * `random`   — the successor permutation is a Sattolo-shuffled single
//!   cycle, so every hop lands on an unpredictable slot (cache-hostile,
//!   the honest pointer-chasing regime);
//! * `sequential` — the successor of `i` is `i + 1 mod n`, the layout the
//!   Euler-tour reduction actually produces for a path, where the dense
//!   slab turns the walk into a prefetchable linear scan.
//!
//! Every backend must produce the identical walk checksum (the reads are
//! the computation — a divergent checksum means a broken backend). Results
//! are printed as a table and persisted to `BENCH_pointer_chase.json` at
//! the repository root (override the path with `BENCH_POINTER_CHASE_OUT`)
//! so CI can archive a perf trajectory across PRs.

use std::time::Instant;

use ampc::{AmpcConfig, AmpcSystem, DenseDht, DhtBackend, DhtStorage, FlatDht, Key, ShardedDht};

/// Keyspace: successor pointers (the FWD table of the cycle machinery).
const FWD: u16 = 0;

/// Cycle size (≥ 1M vertices per the acceptance bar).
const N: usize = 1 << 20;
/// Walks started per timing pass.
const STARTS: usize = 1 << 16;
/// Hops per walk (a ShrinkSmallCycles probe at B ≈ 16 walks 4B hops).
const HOPS: usize = 64;
/// Timed passes per backend; the minimum is reported.
const PASSES: usize = 3;

/// Builds a single-cycle successor permutation: `i → i+1` when `random`
/// is false, a Sattolo-shuffled cycle (every element deranged, one orbit)
/// when true.
fn successors(random: bool) -> Vec<u64> {
    if !random {
        return (0..N as u64).map(|i| (i + 1) % N as u64).collect();
    }
    // Sattolo's algorithm yields a uniform single-cycle permutation.
    let mut perm: Vec<u64> = (0..N as u64).collect();
    let mut rng = ampc::rng::stream(0xC4A5E, 0, 0, 0);
    for i in (1..N).rev() {
        let j = rng.next_below(i as u64) as usize;
        perm.swap(i, j);
    }
    let mut succ = vec![0u64; N];
    for i in 0..N {
        succ[perm[i] as usize] = perm[(i + 1) % N];
    }
    succ
}

/// Runs `PASSES` timed walk rounds on one backend, returning
/// `(best ns/read, checksum)`.
fn chase<S: DhtStorage<u64>>(succ: &[u64], backend: DhtBackend) -> (f64, u64) {
    // One machine, no thread pool: the time measured is the read path.
    let cfg = AmpcConfig::default()
        .with_machines(1)
        .with_parallel(false)
        .with_seed(0xC4A5E)
        .with_backend(backend);
    let mut sys: AmpcSystem<u64, S> =
        AmpcSystem::new(cfg, succ.iter().enumerate().map(|(i, &s)| (Key::new(FWD, i as u64), s)));
    let stride = (N / STARTS).max(1) as u64;
    let starts: Vec<u64> = (0..STARTS as u64).map(|j| j * stride % N as u64).collect();
    let mut best_ns = f64::INFINITY;
    let mut checksum = 0u64;
    for _ in 0..PASSES {
        let t0 = Instant::now();
        let out = sys
            .round("pointer-chase", &starts, |ctx, &start| {
                let mut cur = start;
                let mut acc = 0u64;
                for _ in 0..HOPS {
                    cur = *ctx.read(Key::new(FWD, cur)).expect("cycle successor");
                    acc = acc.wrapping_add(cur);
                }
                Some(acc)
            })
            .expect("walk round");
        let elapsed = t0.elapsed();
        checksum = out.results.iter().fold(0u64, |a, &x| a.wrapping_add(x));
        best_ns = best_ns.min(elapsed.as_secs_f64() * 1e9 / (STARTS * HOPS) as f64);
    }
    (best_ns, checksum)
}

/// Times all three backends on one successor table, asserting checksum
/// equality, and returns `[(backend name, ns/read); 3]`.
fn run_pattern(succ: &[u64]) -> [(&'static str, f64); 3] {
    let (flat_ns, flat_sum) = chase::<FlatDht<u64>>(succ, DhtBackend::Flat);
    let (sharded_ns, sharded_sum) = chase::<ShardedDht<u64>>(succ, DhtBackend::sharded());
    let (dense_ns, dense_sum) = chase::<DenseDht<u64>>(succ, DhtBackend::Dense { cap: N });
    assert_eq!(flat_sum, sharded_sum, "sharded walk diverged from flat");
    assert_eq!(flat_sum, dense_sum, "dense walk diverged from flat");
    [("flat", flat_ns), ("sharded", sharded_ns), ("dense", dense_ns)]
}

fn json_object(rows: &[(&str, f64)]) -> String {
    let fields: Vec<String> =
        rows.iter().map(|(name, ns)| format!("\"{name}\": {ns:.2}")).collect();
    format!("{{ {} }}", fields.join(", "))
}

fn main() {
    println!(
        "pointer_chase: n = {N}, {STARTS} walks x {HOPS} hops = {} reads/pass, best of {PASSES}",
        STARTS * HOPS
    );
    let mut sections = Vec::new();
    for (pattern, random) in [("random", true), ("sequential", false)] {
        let succ = successors(random);
        let rows = run_pattern(&succ);
        println!("  {pattern} walk:");
        for (name, ns) in rows {
            println!("    {name:<8} {ns:8.2} ns/read");
        }
        let flat = rows[0].1;
        let dense = rows[2].1;
        println!("    dense vs flat: {:.2}x", flat / dense);
        sections.push(format!("\"{pattern}_ns_per_read\": {}", json_object(&rows)));
    }
    let json = format!(
        "{{\n  \"bench\": \"pointer_chase\",\n  \"n\": {N},\n  \"walks\": {STARTS},\n  \
         \"hops\": {HOPS},\n  \"reads_per_pass\": {},\n  {}\n}}\n",
        STARTS * HOPS,
        sections.join(",\n  ")
    );
    let out_path = std::env::var("BENCH_POINTER_CHASE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pointer_chase.json").to_string()
    });
    std::fs::write(&out_path, json).expect("write BENCH_pointer_chase.json");
    println!("  wrote {out_path}");
}
