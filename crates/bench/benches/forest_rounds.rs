//! E1 bench — Algorithm 1 end-to-end on forest families (Theorem 1.1).
//!
//! Times the full forest-connectivity pipeline per family and size; the
//! companion `experiments` binary prints the round/space tables this bench
//! times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ampc_cc::forest::pipeline::{connected_components_forest, ForestCcConfig};
use ampc_graph::generators::ForestFamily;

fn bench_forest_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_rounds");
    group.sample_size(10);
    for fam in [ForestFamily::RandomTree, ForestFamily::TinyTrees, ForestFamily::Path] {
        for exp in [12u32, 14] {
            let n = 1usize << exp;
            let g = fam.generate(n, 0xBE);
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::new(fam.name(), n), &g, |b, g| {
                b.iter(|| {
                    let cfg = ForestCcConfig::default().with_seed(0xBE);
                    let res = connected_components_forest(g, &cfg).expect("cc");
                    assert!(res.labeling.len() == g.n());
                    res.rounds()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_forest_rounds);
criterion_main!(benches);
