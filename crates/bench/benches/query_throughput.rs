//! Query-throughput bench — the read path under the three workload mixes.
//!
//! Builds a `ComponentIndex` over a ≥1M-vertex forest with thousands of
//! components and times the `QueryEngine` on each standard mix (uniform,
//! Zipf-skewed, adversarial cross-component), comparing the per-call path
//! against the batched slice-in/slice-out path. The labeling comes from
//! the union-find reference: the index is a pure function of the
//! partition (the cross-validation matrix pins pipeline labels to the
//! reference), so the numbers measure exactly the serving layer, not the
//! pipeline in front of it.
//!
//! The single and batched paths must produce identical answer checksums —
//! the answers are the computation, so a divergent checksum means a broken
//! engine. Results are printed as a table and persisted to
//! `BENCH_query_throughput.json` at the repository root (override with
//! `BENCH_QUERY_THROUGHPUT_OUT`) so CI archives the serving-throughput
//! trajectory next to the pointer-chase read-latency baseline.
//!
//! Set `AMPC_BENCH_QUICK=1` for the CI-sized run (2^16 vertices, 2^17
//! queries per mix).

use std::time::Instant;

use ampc_graph::generators::random_forest;
use ampc_graph::reference_components;
use ampc_query::workload::{self, Mix};
use ampc_query::{throughput, ComponentIndex, QueryEngine};

/// Batch size for the batched pass (the CLI default).
const BATCH: usize = 1024;
/// Timed passes per (mix, path); the best is reported.
const PASSES: usize = 3;
/// Workload seed (the queries, not the graph).
const SEED: u64 = 0x5E27E;

fn quick() -> bool {
    std::env::var("AMPC_BENCH_QUICK").map(|v| v != "0").unwrap_or(false)
}

fn main() {
    let (n, num_queries) =
        if quick() { (1usize << 16, 1usize << 17) } else { (1usize << 20, 1usize << 20) };
    // A forest of ~n/256-vertex trees: thousands of components spanning
    // several size decades, so every mix (incl. cross-component) has
    // structure to work against.
    let g = random_forest(n, n / 256, 0xF0);
    let labeling = reference_components(&g);

    let t0 = Instant::now();
    let index = ComponentIndex::build(&labeling);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "query_throughput: n = {n}, components = {}, index {} bytes built in {build_ms:.1} ms",
        index.num_components(),
        index.heap_bytes()
    );
    println!("  {num_queries} queries per mix, batch = {BATCH}, best of {PASSES}");

    let engine = QueryEngine::new(&index);
    let mut buf = Vec::new();
    let mut sections = Vec::new();
    for mix in Mix::STANDARD {
        let queries = workload::generate(&index, mix, num_queries, SEED);
        let mut single_qps = 0.0f64;
        let mut batch_qps = 0.0f64;
        let mut single_sum = 0u64;
        let mut batch_sum = 0u64;
        for _ in 0..PASSES {
            let (qps, sum) = throughput::single_pass(&engine, &queries);
            single_qps = single_qps.max(qps);
            single_sum = sum;
            let (qps, sum) = throughput::batched_pass(&engine, &queries, BATCH, &mut buf);
            batch_qps = batch_qps.max(qps);
            batch_sum = sum;
        }
        assert_eq!(single_sum, batch_sum, "mix {}: batch path diverged", mix.name());
        println!(
            "  {:<8} single {:>12.0} q/s | batch {:>12.0} q/s | checksum {}",
            mix.name(),
            single_qps,
            batch_qps,
            single_sum
        );
        sections.push(format!(
            "\"{}\": {{ \"single_queries_per_sec\": {:.0}, \"batch_queries_per_sec\": {:.0} }}",
            mix.name(),
            single_qps,
            batch_qps
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"query_throughput\",\n  \"n\": {n},\n  \"components\": {},\n  \
         \"queries_per_mix\": {num_queries},\n  \"batch\": {BATCH},\n  \
         \"index_build_ms\": {build_ms:.1},\n  \"mixes\": {{ {} }}\n}}\n",
        index.num_components(),
        sections.join(", ")
    );
    let out_path = std::env::var("BENCH_QUERY_THROUGHPUT_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query_throughput.json").to_string()
    });
    std::fs::write(&out_path, json).expect("write BENCH_query_throughput.json");
    println!("  wrote {out_path}");
}
