//! Query-throughput bench — the serving layer under the three workload
//! mixes, at one and several reader threads.
//!
//! Exercises the real serving stack end to end: a `PipelineSpec` (auto →
//! Algorithm 1 on the forest input, dense backend) handed to a
//! `ConnectivityService`, which runs the pipeline, validates the labeling,
//! and publishes the frozen `ComponentIndex` as epoch 0; the
//! multi-threaded driver then answers each standard mix (uniform,
//! Zipf-skewed, adversarial cross-component) through lock-free pinned
//! snapshots — the per-call path vs. the batched slice-in/slice-out path,
//! at every configured thread count.
//!
//! Totals are thread-count-invariant by construction (deterministic
//! striping + commutative checksum); the bench asserts it. Results are
//! printed as a table and persisted to `BENCH_query_throughput.json` at
//! the repository root (override with `BENCH_QUERY_THROUGHPUT_OUT`): the
//! per-mix single-thread rows keep the serving-throughput trajectory
//! started in PR 4, and the `thread_scaling` rows (≥2 thread counts) seed
//! the read-scaling trajectory. On a single-core CI host the 4-thread
//! rows measure oversubscription, not scaling — the interesting numbers
//! come from multi-core runs.
//!
//! Set `AMPC_BENCH_QUICK=1` for the CI-sized run (2^16 vertices, 2^17
//! queries per mix).

use std::time::Instant;

use ampc::DhtBackend;
use ampc_cc::pipeline::PipelineSpec;
use ampc_graph::generators::random_forest;
use ampc_query::workload::{self, Mix};
use ampc_serve::{driver, ServiceBuilder};

/// Batch size for the batched pass (the CLI default).
const BATCH: usize = 1024;
/// Timed passes per (mix, threads, path); the best is reported.
const PASSES: usize = 3;
/// Workload seed (the queries, not the graph).
const SEED: u64 = 0x5E27E;
/// Reader-thread counts for the scaling rows.
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn quick() -> bool {
    std::env::var("AMPC_BENCH_QUICK").map(|v| v != "0").unwrap_or(false)
}

fn main() {
    let (n, num_queries) =
        if quick() { (1usize << 16, 1usize << 17) } else { (1usize << 20, 1usize << 20) };
    // A forest of ~n/256-vertex trees: thousands of components spanning
    // several size decades, so every mix (incl. cross-component) has
    // structure to work against.
    let g = random_forest(n, n / 256, 0xF0);
    let spec = PipelineSpec::default().with_seed(SEED).with_backend(DhtBackend::dense());

    let t0 = Instant::now();
    let service = ServiceBuilder::new(g).spec(spec).build().expect("service build");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let snap = service.snapshot();
    println!(
        "query_throughput: n = {n}, components = {}, index {} bytes | algorithm {} \
         ({} AMPC rounds) | epoch {} published in {build_ms:.1} ms",
        snap.index().num_components(),
        snap.index().heap_bytes(),
        snap.algorithm().number(),
        snap.stats().rounds(),
        snap.epoch()
    );
    println!(
        "  {num_queries} queries per mix, batch = {BATCH}, threads = {THREAD_COUNTS:?}, \
         best of {PASSES}"
    );

    let mut mix_sections = Vec::new();
    let mut scaling_rows = Vec::new();
    for mix in Mix::STANDARD {
        let queries = workload::generate(snap.index(), mix, num_queries, SEED);
        let mut baseline_checksum = None;
        for threads in THREAD_COUNTS {
            let mut single_qps = 0.0f64;
            let mut batch_qps = 0.0f64;
            for _ in 0..PASSES {
                let r = driver::run(&service, &queries, threads, BATCH);
                // Totals are striping-invariant; any drift is a torn read
                // or a broken engine, not noise.
                let expect = *baseline_checksum.get_or_insert(r.checksum);
                assert_eq!(expect, r.checksum, "mix {}: checksum drifted", mix.name());
                single_qps = single_qps.max(r.aggregate_single_qps);
                batch_qps = batch_qps.max(r.aggregate_batch_qps);
            }
            println!(
                "  {:<8} threads {:>2} | single {:>12.0} q/s | batch {:>12.0} q/s | checksum {}",
                mix.name(),
                threads,
                single_qps,
                batch_qps,
                baseline_checksum.unwrap_or(0)
            );
            scaling_rows.push(format!(
                "{{ \"mix\": \"{}\", \"threads\": {threads}, \
                 \"single_queries_per_sec\": {single_qps:.0}, \
                 \"batch_queries_per_sec\": {batch_qps:.0} }}",
                mix.name()
            ));
            if threads == 1 {
                // The single-thread row continues the PR 4 trajectory keys.
                mix_sections.push(format!(
                    "\"{}\": {{ \"single_queries_per_sec\": {:.0}, \
                     \"batch_queries_per_sec\": {:.0} }}",
                    mix.name(),
                    single_qps,
                    batch_qps
                ));
            }
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"query_throughput\",\n  \"n\": {n},\n  \"components\": {},\n  \
         \"queries_per_mix\": {num_queries},\n  \"batch\": {BATCH},\n  \
         \"service_build_ms\": {build_ms:.1},\n  \"mixes\": {{ {} }},\n  \
         \"thread_scaling\": [\n    {}\n  ]\n}}\n",
        snap.index().num_components(),
        mix_sections.join(", "),
        scaling_rows.join(",\n    ")
    );
    let out_path = std::env::var("BENCH_QUERY_THROUGHPUT_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query_throughput.json").to_string()
    });
    std::fs::write(&out_path, json).expect("write BENCH_query_throughput.json");
    println!("  wrote {out_path}");
}
