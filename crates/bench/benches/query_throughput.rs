//! Query-throughput bench — the serving layer under the three workload
//! mixes, at one and several reader threads.
//!
//! Exercises the real serving stack end to end: a `PipelineSpec` (auto →
//! Algorithm 1 on the forest input, dense backend) handed to a
//! `ConnectivityService`, which runs the pipeline, validates the labeling,
//! and publishes the frozen `ComponentIndex` as epoch 0; the
//! multi-threaded driver then answers each standard mix (uniform,
//! Zipf-skewed, adversarial cross-component) through lock-free pinned
//! snapshots — the per-call path vs. the batched slice-in/slice-out path,
//! at every configured thread count.
//!
//! Totals are thread-count-invariant by construction (deterministic
//! striping + commutative checksum); the bench asserts it. Results are
//! printed as a table and persisted to `BENCH_query_throughput.json` at
//! the repository root (override with `BENCH_QUERY_THROUGHPUT_OUT`): the
//! per-mix single-thread rows keep the serving-throughput trajectory
//! started in PR 4, the `latency` rows record per-query quantiles
//! (p50/p90/p99/p999/max ns per mix, from a separate instrumented pass so
//! the q/s numbers stay clean), and the `thread_scaling` rows (≥2 thread
//! counts) seed the read-scaling trajectory. On a single-core CI host the 4-thread
//! rows measure oversubscription, not scaling — the interesting numbers
//! come from multi-core runs.
//!
//! The **network** section replays each mix over loopback TCP through the
//! closed-loop client harness (`ampc-net`): wire checksums must equal the
//! in-process engine's, a same-graph rebuild publishes mid-flight under
//! live connections, and an overload burst against a one-worker server
//! proves deterministic typed shedding. Wire latency (client round-trip)
//! and service latency (server-side per query) are reported separately.
//!
//! The **snapshot** section measures the fan-out path: persist the
//! published epoch (atomic rename), boot a fresh replica from the file
//! (one bulk read + validation, sections reinterpreted in place), and
//! cross-validate that the boot answers every mix byte-identically to the
//! live-built service. The bench asserts the boot is ≥ 1000× faster than
//! the pipeline build (≥ 10× in quick mode, where the build is small).
//!
//! The **streaming** section measures the incremental delta path: edge
//! insertion batches published as journal-epochs interleaved with read
//! passes, versus the full rebuild they replace. Every batch is validated
//! against a from-scratch union-find oracle before its timing counts; the
//! bench asserts the journal publish is ≥ 10× cheaper than a rebuild.
//!
//! Set `AMPC_BENCH_QUICK=1` for the CI-sized run (2^16 vertices, 2^17
//! queries per mix).

use std::time::Instant;

use ampc::rng::{derive_seed, SplitMix64};
use ampc::DhtBackend;
use ampc_cc::pipeline::PipelineSpec;
use ampc_graph::generators::random_forest;
use ampc_graph::{reference_components, Graph, VertexId};
use ampc_query::workload::{self, Mix};
use ampc_query::{ComponentIndex, Query};
use ampc_serve::{driver, JournalBudget, ServiceBuilder};

/// Batch size for the batched pass (the CLI default).
const BATCH: usize = 1024;
/// Timed passes per (mix, threads, path); the best is reported.
const PASSES: usize = 3;
/// Workload seed (the queries, not the graph).
const SEED: u64 = 0x5E27E;
/// Reader-thread counts for the scaling rows.
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn quick() -> bool {
    std::env::var("AMPC_BENCH_QUICK").map(|v| v != "0").unwrap_or(false)
}

fn main() {
    let (n, num_queries) =
        if quick() { (1usize << 16, 1usize << 17) } else { (1usize << 20, 1usize << 20) };
    // A forest of ~n/256-vertex trees: thousands of components spanning
    // several size decades, so every mix (incl. cross-component) has
    // structure to work against.
    let g = random_forest(n, n / 256, 0xF0);
    let base_edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let spec = PipelineSpec::default().with_seed(SEED).with_backend(DhtBackend::dense());

    let t0 = Instant::now();
    let service = ServiceBuilder::new(g)
        .spec(spec)
        .journal_budget(JournalBudget::unbounded())
        .build()
        .expect("service build");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let snap = service.snapshot();
    println!(
        "query_throughput: n = {n}, components = {}, index {} bytes | algorithm {} \
         ({} AMPC rounds) | epoch {} published in {build_ms:.1} ms",
        snap.index().num_components(),
        snap.index().heap_bytes(),
        snap.algorithm().number(),
        snap.stats().rounds(),
        snap.epoch()
    );
    println!(
        "  {num_queries} queries per mix, batch = {BATCH}, threads = {THREAD_COUNTS:?}, \
         best of {PASSES}"
    );

    let mut mix_sections = Vec::new();
    let mut scaling_rows = Vec::new();
    let mut latency_rows = Vec::new();
    let mut mix_checksums = Vec::new();
    for mix in Mix::STANDARD {
        let queries = workload::generate(snap.index(), mix, num_queries, SEED);
        let mut baseline_checksum = None;
        for threads in THREAD_COUNTS {
            let mut single_qps = 0.0f64;
            let mut batch_qps = 0.0f64;
            for _ in 0..PASSES {
                let r = driver::run(&service, &queries, threads, BATCH);
                // Totals are striping-invariant; any drift is a torn read
                // or a broken engine, not noise.
                let expect = *baseline_checksum.get_or_insert(r.checksum);
                assert_eq!(expect, r.checksum, "mix {}: checksum drifted", mix.name());
                single_qps = single_qps.max(r.aggregate_single_qps);
                batch_qps = batch_qps.max(r.aggregate_batch_qps);
            }
            println!(
                "  {:<8} threads {:>2} | single {:>12.0} q/s | batch {:>12.0} q/s | checksum {}",
                mix.name(),
                threads,
                single_qps,
                batch_qps,
                baseline_checksum.unwrap_or(0)
            );
            scaling_rows.push(format!(
                "{{ \"mix\": \"{}\", \"threads\": {threads}, \
                 \"single_queries_per_sec\": {single_qps:.0}, \
                 \"batch_queries_per_sec\": {batch_qps:.0} }}",
                mix.name()
            ));
            if threads == 1 {
                // The single-thread row continues the PR 4 trajectory keys.
                mix_sections.push(format!(
                    "\"{}\": {{ \"single_queries_per_sec\": {:.0}, \
                     \"batch_queries_per_sec\": {:.0} }}",
                    mix.name(),
                    single_qps,
                    batch_qps
                ));
            }
        }
        // Per-query latency distribution: a separate instrumented pass
        // (two clock reads per query) so the throughput numbers above stay
        // clean. One thread — this measures the distribution, not scaling.
        let lat = driver::run_latency(&service, &queries, 1);
        assert_eq!(
            Some(lat.checksum),
            baseline_checksum,
            "mix {}: latency pass diverged from the throughput passes",
            mix.name()
        );
        assert!(
            lat.p50_ns > 0 && lat.p99_ns > 0 && lat.p999_ns > 0,
            "mix {}: latency quantiles must be nonzero",
            mix.name()
        );
        println!(
            "  {:<8} latency   | p50 {:>6} ns | p99 {:>6} ns | p999 {:>6} ns | max {:>8} ns \
             | mean {:>6.0} ns",
            mix.name(),
            lat.p50_ns,
            lat.p99_ns,
            lat.p999_ns,
            lat.max_ns,
            lat.mean_ns
        );
        latency_rows.push(format!(
            "\"{}\": {{ \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
             \"max_ns\": {}, \"mean_ns\": {:.1} }}",
            mix.name(),
            lat.p50_ns,
            lat.p90_ns,
            lat.p99_ns,
            lat.p999_ns,
            lat.max_ns,
            lat.mean_ns
        ));
        mix_checksums.push((mix, baseline_checksum.unwrap_or(0)));
    }

    // ---- network: the TCP front-end over the same published epoch. Each
    // mix replays over loopback through the closed-loop client harness
    // and must reproduce the in-process engine's checksum byte for byte.
    // A rebuild of the *same* graph publishes mid-flight during one mix
    // (identical answers across epochs), exercising the worker-pinned
    // snapshot swap under live connections; an overload burst against a
    // deliberately tiny second server proves the admission queue sheds
    // with the typed Overloaded reply and never grows past its bound.
    let net_queries = num_queries / 8;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let server = ampc_net::serve(
        service.clone(),
        listener,
        ampc_net::ServerConfig { workers: 4, queue_depth: 64, max_payload: 1 << 20 },
    )
    .expect("net server");
    let addr = server.local_addr();
    let mut network_rows = Vec::new();
    for (i, &(mix, _)) in mix_checksums.iter().enumerate() {
        let queries = workload::generate(snap.index(), mix, net_queries, SEED ^ 0x4E7);
        let engine = snap.engine();
        let expected: u64 = queries.iter().fold(0u64, |acc, &q| acc.wrapping_add(engine.answer(q)));
        let rebuild = (i == 1).then(|| service.rebuild(Graph::from_edges(n, &base_edges)));
        let report = ampc_net::run_harness(
            addr,
            &queries,
            ampc_net::HarnessConfig { connections: 2, batch: BATCH, retries: 0 },
        )
        .expect("network harness");
        if let Some(h) = rebuild {
            h.wait().expect("mid-flight rebuild");
        }
        assert_eq!(
            report.checksum,
            expected,
            "mix {}: wire answers diverged from the in-process engine",
            mix.name()
        );
        let (wp50, wp99, wp999) =
            (report.wire.quantile(0.5), report.wire.quantile(0.99), report.wire.quantile(0.999));
        assert!(wp50 > 0 && wp99 > 0 && wp999 > 0, "wire quantiles must be nonzero");
        println!(
            "  network  {:<8} | {:>12.0} q/s over the wire | wire p50 {:>8} ns p99 {:>8} ns \
             | checksum matches",
            mix.name(),
            report.qps,
            wp50,
            wp99
        );
        network_rows.push(format!(
            "\"{}\": {{ \"queries_per_sec\": {:.0}, \"wire_p50_ns\": {wp50}, \
             \"wire_p99_ns\": {wp99}, \"wire_p999_ns\": {wp999}, \"wire_max_ns\": {}, \
             \"checksum_matches_oracle\": true }}",
            mix.name(),
            report.qps,
            report.wire.max
        ));
    }
    let service_lat = server.service_latency();
    assert!(
        service_lat.count >= (net_queries * mix_checksums.len()) as u64,
        "every wire query must land in the server-side service histogram"
    );
    assert!(service_lat.quantile(0.5) > 0, "service quantiles must be nonzero");
    println!(
        "  network  service   | p50 {:>6} ns | p99 {:>6} ns | p999 {:>6} ns ({} queries \
         server-side)",
        service_lat.quantile(0.5),
        service_lat.quantile(0.99),
        service_lat.quantile(0.999),
        service_lat.count
    );

    // Overload burst: one worker, queue depth 1. A held connection pins
    // the worker; one more fills the queue; the rest of the burst must be
    // shed with the typed reply while the queue stays at its bound.
    let tiny = ampc_net::serve(
        service.clone(),
        std::net::TcpListener::bind("127.0.0.1:0").expect("bind tiny"),
        ampc_net::ServerConfig { workers: 1, queue_depth: 1, max_payload: 1 << 20 },
    )
    .expect("tiny server");
    let mut held = ampc_net::Connection::connect(tiny.local_addr()).expect("hold worker");
    held.query_batch(&[Query::TopKSize(1)]).expect("pin the only worker");
    const BURST: usize = 8;
    let burst: Vec<std::net::TcpStream> = (0..BURST)
        .map(|_| std::net::TcpStream::connect(tiny.local_addr()).expect("burst connect"))
        .collect();
    let shed_deadline = Instant::now() + std::time::Duration::from_secs(10);
    while tiny.connections_shed() < (BURST - 1) as u64 {
        assert!(Instant::now() < shed_deadline, "overload shed did not complete");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let shed = tiny.connections_shed();
    assert_eq!(shed, (BURST - 1) as u64, "exactly one burst connection fits the queue");
    assert!(tiny.queued() <= 1, "admission queue grew past its high-water mark");
    println!(
        "  network  overload  | burst {BURST} connections → {shed} shed (typed Overloaded), \
         queue depth held at ≤ 1"
    );
    drop(burst);
    drop(held);
    drop(tiny);
    let network_section = format!(
        "{{ \"queries_per_mix\": {net_queries}, \"connections\": 2, \"batch\": {BATCH}, \
         \"mixes\": {{ {} }}, \
         \"service\": {{ \"queries\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {} }}, \
         \"mid_flight_rebuild\": true, \
         \"overload\": {{ \"burst\": {BURST}, \"shed\": {shed}, \"queue_depth\": 1 }} }}",
        network_rows.join(", "),
        service_lat.count,
        service_lat.quantile(0.5),
        service_lat.quantile(0.99),
        service_lat.quantile(0.999)
    );
    drop(server);

    // ---- snapshot: persist the published epoch, boot a replica from the
    // file (one bulk read + validation, zero per-element deserialization),
    // and prove the boot answers every mix byte-identically to the
    // live-built service it was persisted from.
    let snap_path =
        std::env::temp_dir().join(format!("ampc_query_throughput_{}.snap", std::process::id()));
    let t0 = Instant::now();
    let persist_report = service.persist(&snap_path).expect("persist");
    let persist_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let booted = ServiceBuilder::from_snapshot(&snap_path).expect("snapshot boot");
    let boot_ms = t0.elapsed().as_secs_f64() * 1e3;
    let bsnap = booted.snapshot();
    assert!(bsnap.index().is_snapshot_backed(), "boot must reinterpret sections in place");
    assert_eq!(bsnap.index(), snap.index(), "booted index must equal the live one byte for byte");
    let mut post_boot_qps = 0.0f64;
    for &(mix, expect) in &mix_checksums {
        // Same index ⇒ same generated workload; the booted service must
        // reproduce the live service's checksum exactly, on every mix.
        let queries = workload::generate(bsnap.index(), mix, num_queries, SEED);
        let r = driver::run(&booted, &queries, 1, BATCH);
        assert_eq!(
            r.checksum,
            expect,
            "mix {}: booted replica diverged from the live service",
            mix.name()
        );
        post_boot_qps = post_boot_qps.max(r.aggregate_batch_qps);
    }
    let boot_speedup = build_ms / boot_ms;
    let min_speedup = if quick() { 10.0 } else { 1000.0 };
    println!(
        "  snapshot: {} bytes | persist {persist_ms:.2} ms | boot {boot_ms:.2} ms \
         ({boot_speedup:.0}× faster than the {build_ms:.1} ms build) | post-boot \
         {post_boot_qps:.0} q/s | all {} mixes byte-identical",
        persist_report.bytes,
        mix_checksums.len()
    );
    assert!(
        boot_speedup >= min_speedup,
        "snapshot boot must be ≥ {min_speedup}× faster than the pipeline build \
         (got {boot_speedup:.1}×)"
    );
    drop(bsnap);
    drop(booted);
    let _ = std::fs::remove_file(&snap_path);
    let snapshot_section = format!(
        "{{ \"file_bytes\": {}, \"persist_ms\": {persist_ms:.2}, \"boot_ms\": {boot_ms:.2}, \
         \"boot_vs_build_speedup\": {boot_speedup:.0}, \
         \"post_boot_batch_queries_per_sec\": {post_boot_qps:.0}, \
         \"cross_validated_mixes\": {} }}",
        persist_report.bytes,
        mix_checksums.len()
    );

    // ---- streaming: journal-epoch inserts vs. the rebuild they replace.
    let (batches, edges_per_batch) = if quick() { (8usize, 64usize) } else { (16usize, 64usize) };
    // The rebuild cost a journal publish avoids: re-running the pipeline
    // over the same graph (publishes epoch 1 and resets the lineage).
    let t0 = Instant::now();
    service.rebuild_blocking(Graph::from_edges(n, &base_edges)).expect("baseline rebuild");
    let full_rebuild_ms = t0.elapsed().as_secs_f64() * 1e3;

    let read_queries = workload::generate(snap.index(), Mix::Uniform, num_queries / 8, SEED ^ 1);
    let components = snap.index().num_components();
    drop(snap);
    let mut all_edges = base_edges;
    let mut publish_ms = Vec::with_capacity(batches);
    let mut read_qps = 0.0f64;
    let mut rng = SplitMix64::new(derive_seed(&[0x57_BEAC, SEED]));
    for b in 0..batches {
        let batch: Vec<(VertexId, VertexId)> = (0..edges_per_batch)
            .map(|_| (rng.next_below(n as u64) as VertexId, rng.next_below(n as u64) as VertexId))
            .collect();
        let t0 = Instant::now();
        let report = service.insert_edges(&batch).expect("insert_edges");
        publish_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        assert!(!report.compaction_started, "unbounded budget must never compact");
        all_edges.extend_from_slice(&batch);
        // Reads interleave with the arrivals: one driver pass per batch.
        let r = driver::run(&service, &read_queries, 1, BATCH);
        read_qps = read_qps.max(r.aggregate_batch_qps);
        // Validate before the timing counts: answers on the journal-epoch
        // must be byte-identical to a from-scratch union-find oracle.
        let oracle =
            ComponentIndex::build(&reference_components(&Graph::from_edges(n, &all_edges)));
        let snap = service.snapshot();
        let engine = snap.engine();
        assert_eq!(snap.num_components(), oracle.num_components(), "batch {b}");
        let mut probe = SplitMix64::new(derive_seed(&[0xC4EC4, b as u64]));
        for _ in 0..4096 {
            let v = probe.next_below(n as u64) as VertexId;
            assert_eq!(engine.answer(Query::ComponentOf(v)), oracle.component_of(v) as u64);
            assert_eq!(engine.answer(Query::ComponentSize(v)), oracle.component_size(v) as u64);
        }
        for k in 1..=8u32 {
            assert_eq!(
                engine.answer(Query::TopKSize(k)),
                oracle.kth_largest_size(k as usize) as u64
            );
        }
    }
    let avg_publish_ms = publish_ms.iter().sum::<f64>() / publish_ms.len() as f64;
    let max_publish_ms = publish_ms.iter().fold(0.0f64, |a, &b| a.max(b));
    let speedup = full_rebuild_ms / avg_publish_ms;
    let final_components = service.snapshot().num_components();
    println!(
        "  streaming: {batches} batches × {edges_per_batch} edges | full rebuild \
         {full_rebuild_ms:.1} ms | journal publish avg {avg_publish_ms:.3} ms \
         (max {max_publish_ms:.3}) | {speedup:.0}× cheaper | reads {read_qps:.0} q/s | \
         {final_components} components"
    );
    assert!(
        speedup >= 10.0,
        "journal publish must be ≥ 10× cheaper than a rebuild (got {speedup:.1}×)"
    );

    let streaming_section = format!(
        "{{ \"batches\": {batches}, \"edges_per_batch\": {edges_per_batch}, \
         \"full_rebuild_ms\": {full_rebuild_ms:.1}, \
         \"avg_journal_publish_ms\": {avg_publish_ms:.3}, \
         \"max_journal_publish_ms\": {max_publish_ms:.3}, \"speedup\": {speedup:.1}, \
         \"reads_qps_during_stream\": {read_qps:.0}, \
         \"final_components\": {final_components} }}"
    );

    let json = format!(
        "{{\n  \"bench\": \"query_throughput\",\n  \"n\": {n},\n  \"components\": {},\n  \
         \"queries_per_mix\": {num_queries},\n  \"batch\": {BATCH},\n  \
         \"service_build_ms\": {build_ms:.1},\n  \"mixes\": {{ {} }},\n  \
         \"latency\": {{ {} }},\n  \
         \"thread_scaling\": [\n    {}\n  ],\n  \"network\": {},\n  \"snapshot\": {},\n  \
         \"streaming\": {}\n}}\n",
        components,
        mix_sections.join(", "),
        latency_rows.join(", "),
        scaling_rows.join(",\n    "),
        network_section,
        snapshot_section,
        streaming_section
    );
    let out_path = std::env::var("BENCH_QUERY_THROUGHPUT_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query_throughput.json").to_string()
    });
    std::fs::write(&out_path, json).expect("write BENCH_query_throughput.json");
    println!("  wrote {out_path}");
}
