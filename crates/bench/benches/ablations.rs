//! E9 bench — ablating Step 2 and the B-doubling schedule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ampc_cc::forest::pipeline::{connected_components_forest, ForestCcConfig};
use ampc_graph::generators::ForestFamily;

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let g = ForestFamily::TinyTrees.generate(1 << 12, 0xE9);
    for (name, step2, double_b) in
        [("full", true, true), ("no_step2", false, true), ("fixed_b", true, false)]
    {
        group.bench_with_input(BenchmarkId::new("variant", name), &name, |b, _| {
            b.iter(|| {
                let mut cfg = ForestCcConfig::default().with_seed(0xE9);
                cfg.enable_step2 = step2;
                cfg.double_b = double_b;
                connected_components_forest(&g, &cfg).expect("cc").rounds()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
