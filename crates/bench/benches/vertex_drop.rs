//! E4 bench — vertex drop per iteration (Lemmas 3.10 and 3.12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ampc::AmpcConfig;
use ampc_cc::cycles::CycleState;
use ampc_cc::forest::shrink_small::shrink_small_cycles;

fn bench_vertex_drop(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex_drop");
    group.sample_size(10);
    let n = 1 << 14;
    let succ: Vec<u64> = (0..n as u64).map(|i| (i + 1) % n as u64).collect();
    for b in [3u16, 6] {
        group.bench_with_input(BenchmarkId::new("B", b), &b, |bench, &b| {
            bench.iter(|| {
                let mut st: CycleState = CycleState::from_successors(
                    &succ,
                    AmpcConfig::default().with_machines(8).with_seed(0xE4),
                );
                let out = shrink_small_cycles(&mut st, b, n, true).expect("iteration");
                // Lemma 3.12's bound, asserted inside the hot loop so the
                // bench doubles as a soak test.
                assert!(out.alive_after as f64 <= 6.0 * n as f64 / (1u64 << b) as f64);
                out.alive_after
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vertex_drop);
criterion_main!(benches);
