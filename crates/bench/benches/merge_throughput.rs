//! Merge-throughput bench — sequential (flat) vs partition-parallel merge.
//!
//! Times one write-heavy AMPC round on a ≥1M-edge generator instance under
//! all three storage backends. The round's machine phase is identical in
//! each; what differs is the round-finish phase: `FlatDht` applies every
//! machine buffer into one map sequentially, `ShardedDht` partitions
//! buffers by key hash, and `DenseDht` partitions them by contiguous id
//! range, both applying the partitions on parallel workers. All runs are
//! asserted to produce identical snapshots, so the timing difference is
//! pure merge throughput.
//!
//! The sharded advantage scales with `available_parallelism()`: with `W`
//! workers the merge critical path drops toward `1/W` of the sequential
//! apply. On a single-core host the scoped-thread pool degrades to the
//! sequential path and the two backends time within noise of each other
//! (the partition pass is pre-sized, see `AmpcSystem::round`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ampc::{AmpcConfig, AmpcSystem, DenseDht, DhtBackend, DhtStorage, FlatDht, Key, ShardedDht};
use ampc_graph::generators::erdos_renyi_gnm;
use ampc_graph::Graph;

/// Keyspace: adjacency lists (the round-0 input).
const ADJ: u16 = 0;
/// Keyspace: rewritten adjacency (the round's write target).
const OUT: u16 = 1;

/// One adjacency-rewrite round: every vertex reads its list and writes a
/// transformed copy — `Θ(m)` write words, so the merge dominates.
fn rewrite_round<S: DhtStorage<Vec<u64>>>(g: &Graph, backend: DhtBackend) -> (usize, usize) {
    let cfg = AmpcConfig::default().with_machines(256).with_seed(0x4E57).with_backend(backend);
    let mut sys: AmpcSystem<Vec<u64>, S> = AmpcSystem::new(
        cfg,
        (0..g.n()).map(|v| {
            let adj: Vec<u64> = g.neighbors(v as u32).iter().map(|&w| w as u64).collect();
            (Key::new(ADJ, v as u64), adj)
        }),
    );
    let items: Vec<u64> = (0..g.n() as u64).collect();
    let out = sys
        .round("merge-rewrite", &items, |ctx, &v| {
            let mut adj = ctx.read(Key::new(ADJ, v)).expect("adjacency").clone();
            adj.reverse();
            ctx.write(Key::new(OUT, v), adj);
            None::<()>
        })
        .expect("round");
    (out.write_words, sys.snapshot().words())
}

fn bench_merge_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_throughput");
    group.sample_size(10);
    // ≥1M edges: the scale at which the sequential merge dominates
    // wall-clock on large generator instances.
    let n = 1 << 17;
    let m = 1 << 20;
    let g = erdos_renyi_gnm(n, m, 0xB16);
    group.throughput(Throughput::Elements(m as u64));

    // Both keyspaces are indexed by vertex id, so the dense slab hint is n.
    let dense = DhtBackend::Dense { cap: n };

    // Cross-backend sanity: identical final snapshot words.
    let flat_words = rewrite_round::<FlatDht<Vec<u64>>>(&g, DhtBackend::Flat).1;
    let sharded_words = rewrite_round::<ShardedDht<Vec<u64>>>(&g, DhtBackend::sharded()).1;
    let dense_words = rewrite_round::<DenseDht<Vec<u64>>>(&g, dense).1;
    assert_eq!(flat_words, sharded_words, "backends must merge to identical snapshots");
    assert_eq!(flat_words, dense_words, "dense backend must merge to an identical snapshot");

    group.bench_with_input(BenchmarkId::new("flat", m), &g, |b, g| {
        b.iter(|| rewrite_round::<FlatDht<Vec<u64>>>(g, DhtBackend::Flat))
    });
    group.bench_with_input(BenchmarkId::new("sharded", m), &g, |b, g| {
        b.iter(|| rewrite_round::<ShardedDht<Vec<u64>>>(g, DhtBackend::sharded()))
    });
    group.bench_with_input(BenchmarkId::new("dense", m), &g, |b, g| {
        b.iter(|| rewrite_round::<DenseDht<Vec<u64>>>(g, dense))
    });
    group.finish();
}

criterion_group!(benches, bench_merge_throughput);
criterion_main!(benches);
