//! Smoke tests of the experiment harness: every experiment must run in
//! quick mode, produce non-empty validated tables, and round-trip to CSV.

#[test]
fn quick_experiments_produce_tables() {
    // The fast subset runs even in debug CI; each experiment validates its
    // own labelings internally (panics on mismatch).
    for id in ["e3", "e4", "e6", "e7", "e10"] {
        let table = ampc_bench::run_one(id, true).expect("known id");
        assert!(!table.rows.is_empty(), "{id} produced no rows");
        assert!(!table.header.is_empty());
        let csv = table.to_csv();
        assert_eq!(csv.lines().count(), table.rows.len() + 1, "{id} csv shape");
        // Numeric data cells must not keep thousands separators (headers
        // like "π_B(i)" legitimately contain underscores).
        for line in csv.lines().skip(1) {
            for cell in line.split(',') {
                if cell.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    assert!(!cell.contains('_'), "{id}: separator kept in {cell}");
                }
            }
        }
    }
}

#[test]
fn unknown_experiment_is_none() {
    assert!(ampc_bench::run_one("e99", true).is_none());
    assert!(ampc_bench::run_one("e13", true).is_none());
    assert!(ampc_bench::run_one("nonsense", true).is_none());
}

#[test]
fn quick_forest_experiments_run() {
    for id in ["e1", "e2", "e9"] {
        let table = ampc_bench::run_one(id, true).expect("known id");
        assert!(!table.rows.is_empty(), "{id} produced no rows");
    }
}

#[test]
fn quick_general_experiments_run() {
    for id in ["e5", "e8", "e11"] {
        let table = ampc_bench::run_one(id, true).expect("known id");
        assert!(!table.rows.is_empty(), "{id} produced no rows");
    }
}

#[test]
fn quick_backend_experiment_runs() {
    // e12 asserts flat/sharded/dense equivalence internally; here we check
    // the table shape: one row per backend per workload.
    let table = ampc_bench::run_one("e12", true).expect("known id");
    assert_eq!(table.rows.len(), 6, "two workloads × three backends");
    let backends: Vec<&str> = table.rows.iter().map(|r| r[1].as_str()).collect();
    assert_eq!(backends.iter().filter(|b| **b == "flat").count(), 2);
    assert_eq!(backends.iter().filter(|b| **b == "sharded").count(), 2);
    assert_eq!(backends.iter().filter(|b| **b == "dense").count(), 2);
}
